"""Memory-mapped index loading: bit-identical, read-only, legacy-safe.

``open_index(..., mmap=True)`` must be a pure performance mode: same
buckets, same rankings (bit-equal scores), same lifecycle behaviour as
an eager load, on both layouts and on legacy v1/v2 files that predate
the saved band keys.  The mapped arrays are write-protected, so these
tests also pin the "flag a writeback attempt" contract: nothing in the
query or lifecycle paths mutates a loaded matrix, and a deliberate
write raises instead of corrupting the file.
"""

import json
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index import (
    ColumnIndex,
    IndexSpec,
    ShardedIndex,
    TableIndex,
    VectorIndex,
    open_index,
)
from repro.index.index import _PAYLOAD_KEY

FIXTURES = Path(__file__).parent / "fixtures"


def _make_index(n=120, dim=16, seed=0, dup_every=3):
    """Raw index with duplicate vectors (dense ties) and tombstones."""
    rng = np.random.default_rng(seed)
    base = rng.standard_normal(((n + dup_every - 1) // dup_every, dim))
    vectors = np.repeat(base, dup_every, axis=0)[:n]
    keys = [f"k{i:05d}" for i in range(n)]
    index = VectorIndex(dim=dim, seed=seed)
    index.add_batch(keys, vectors)
    index.remove(keys[3])
    index.remove(keys[n // 2])
    return index, keys, vectors


def _rankings(index, queries, k=6, excludes=None):
    return [[(hit.key, hit.score) for hit in hits]
            for hits in index.query_many(queries, k=k, excludes=excludes)]


class TestSingleFileEquivalence:
    def test_mmap_matches_eager_bit_for_bit(self, tmp_path):
        index, _keys, vectors = _make_index()
        path = index.save(tmp_path / "one.npz")
        eager = open_index(path)
        mapped = open_index(path, mmap=True)
        rng = np.random.default_rng(1)
        queries = np.vstack([vectors[:5], rng.standard_normal((5, 16))])
        assert _rankings(mapped, queries) == _rankings(eager, queries)
        assert _rankings(mapped, queries, k=500) == \
            _rankings(eager, queries, k=500)   # brute-force fallback path

    def test_mmap_buckets_equal_fresh_build(self, tmp_path):
        """The band keys persisted by save() rebuild exactly the
        buckets a from-scratch hash would."""
        index, _keys, _vectors = _make_index()
        path = index.save(tmp_path / "one.npz")
        mapped = open_index(path, mmap=True)
        assert mapped.lsh._tables == index.lsh._tables
        assert mapped.lsh._band_keys == index.lsh._band_keys
        assert sorted(mapped.lsh.removed) == sorted(index.lsh.removed)

    def test_vectors_are_memory_mapped_and_readonly(self, tmp_path):
        index, keys, _vectors = _make_index()
        path = index.save(tmp_path / "one.npz")
        mapped = open_index(path, mmap=True)
        row = mapped.vector(keys[0])
        # The row must be a view into the file mapping — walk the .base
        # chain down to the np.memmap (a copy would have a short chain
        # of plain ndarrays, or none).
        base = row
        while base is not None and not isinstance(base, np.memmap):
            base = base.base
        assert isinstance(base, np.memmap)
        assert not row.flags.writeable
        with pytest.raises(ValueError):
            row[0] = 123.0

    def test_query_and_lifecycle_never_write_back(self, tmp_path):
        """Run every read/lifecycle path over a write-protected mapping;
        a single writeback would raise, and the file must stay
        byte-identical throughout."""
        index, keys, vectors = _make_index()
        path = index.save(tmp_path / "one.npz")
        before = path.read_bytes()
        mapped = open_index(path, mmap=True)
        mapped.query_vector(vectors[7], k=4)
        mapped.query_many(vectors[:6], k=3)
        mapped.query_brute(vectors[9], k=4)
        mapped.remove(keys[10])
        assert mapped.compact() == 3          # 2 saved tombstones + 1
        mapped.query_vector(vectors[7], k=4)
        assert path.read_bytes() == before

    def test_saving_a_mapped_index_roundtrips(self, tmp_path):
        index, _keys, vectors = _make_index()
        path = index.save(tmp_path / "one.npz")
        mapped = open_index(path, mmap=True)
        resaved = open_index(mapped.save(tmp_path / "two.npz"))
        queries = vectors[:8]
        assert _rankings(resaved, queries) == _rankings(index, queries)


class TestShardedEquivalence:
    @pytest.mark.parametrize("n_shards", [2, 5])
    def test_mmap_matches_eager_on_sharded_layout(self, tmp_path, n_shards):
        _index, keys, vectors = _make_index()
        sharded = ShardedIndex.create(
            IndexSpec(kind="vector", dim=16, seed=0), n_shards)
        sharded.add_batch(keys, vectors)
        path = sharded.save(tmp_path / "sharded")
        eager = open_index(path)
        mapped = open_index(path, mmap=True)
        rng = np.random.default_rng(2)
        queries = np.vstack([vectors[:5], rng.standard_normal((5, 16))])
        assert _rankings(mapped, queries) == _rankings(eager, queries)
        for shard in mapped.shards:
            if len(shard):
                assert not shard.lsh.vector(0).flags.writeable

    def test_lifecycle_on_mapped_sharded_layout(self, tmp_path):
        _index, keys, vectors = _make_index()
        sharded = ShardedIndex.create(
            IndexSpec(kind="vector", dim=16, seed=0), 3)
        sharded.add_batch(keys, vectors)
        path = sharded.save(tmp_path / "sharded")
        mapped = open_index(path, mmap=True)
        mapped.remove(keys[0])
        mapped.compact()
        mapped.rebalance(4)
        assert len(mapped) == len(keys) - 1
        # Saving the post-lifecycle state works (reads the mapping).
        reloaded = open_index(mapped.save(tmp_path / "sharded2"))
        assert len(reloaded) == len(keys) - 1


class TestLegacyAndFallback:
    @pytest.mark.parametrize("fixture", ["v1-table.npz", "v2-table.npz"])
    def test_legacy_fixtures_load_under_mmap(self, fixture):
        """Pre-band-keys files (no saved keys at all) open under mmap
        via the streamed hashing path, identically to eager."""
        eager = open_index(FIXTURES / fixture)
        mapped = open_index(FIXTURES / fixture, mmap=True)
        assert isinstance(mapped, TableIndex)
        assert mapped.keys == eager.keys
        assert sorted(mapped.lsh.removed) == sorted(eager.lsh.removed)
        queries = np.stack([eager.vector(key) for key in eager.keys
                            if key in eager][:3])
        assert _rankings(mapped, queries, k=3) == \
            _rankings(eager, queries, k=3)

    def test_file_without_band_keys_rehashes(self, tmp_path):
        """Strip the band_keys member from a fresh save: load must fall
        back to hashing and produce the same buckets."""
        index, _keys, vectors = _make_index(n=40)
        path = index.save(tmp_path / "full.npz")
        with np.load(path) as archive:
            assert "band_keys" in archive.files
            stripped = {name: archive[name] for name in archive.files
                        if name != "band_keys"}
        np.savez(tmp_path / "stripped.npz", **stripped)
        for mmap in (False, True):
            loaded = open_index(tmp_path / "stripped.npz", mmap=mmap)
            assert loaded.lsh._tables == index.lsh._tables
            assert _rankings(loaded, vectors[:5]) == \
                _rankings(index, vectors[:5])

    def test_mismatched_band_keys_fall_back_to_hashing(self, tmp_path):
        """A band_keys array whose shape disagrees with the payload
        (foreign writer / hand edit) is ignored, not trusted."""
        index, _keys, vectors = _make_index(n=40)
        path = index.save(tmp_path / "full.npz")
        with np.load(path) as archive:
            members = {name: archive[name] for name in archive.files}
        members["band_keys"] = members["band_keys"][:, :2]   # wrong bands
        np.savez(tmp_path / "bad.npz", **members)
        loaded = open_index(tmp_path / "bad.npz", mmap=True)
        assert loaded.lsh._tables == index.lsh._tables

    def test_compressed_member_falls_back_to_eager(self, tmp_path):
        """A compressed archive (np.savez_compressed — no writer here
        produces one, but a user might) still opens under mmap=True via
        the eager fallback, with identical results."""
        index, _keys, vectors = _make_index(n=40)
        path = index.save(tmp_path / "full.npz")
        with np.load(path) as archive:
            members = {name: archive[name] for name in archive.files}
        np.savez_compressed(tmp_path / "squeezed.npz", **members)
        loaded = open_index(tmp_path / "squeezed.npz", mmap=True)
        assert _rankings(loaded, vectors[:5]) == _rankings(index, vectors[:5])

    def test_empty_index_roundtrips_under_mmap(self, tmp_path):
        empty = VectorIndex(dim=8, seed=0)
        path = empty.save(tmp_path / "empty.npz")
        loaded = open_index(path, mmap=True)
        assert len(loaded) == 0
        assert loaded.query_brute(np.ones(8), k=1) == []


class TestBandKeyPersistence:
    def test_save_records_band_keys_member(self, tmp_path):
        index, _keys, _vectors = _make_index(n=30)
        path = index.save(tmp_path / "one.npz")
        with np.load(path) as archive:
            assert "band_keys" in archive.files
            band_keys = archive["band_keys"]
        assert band_keys.shape == (len(index.lsh), index.n_bands)
        assert band_keys.dtype == np.int64
        want = np.array(index.lsh._band_keys, dtype=np.int64)
        assert np.array_equal(band_keys, want)

    def test_incremental_add_and_bulk_add_record_same_keys(self):
        rng = np.random.default_rng(5)
        vectors = rng.standard_normal((20, 12))
        bulk = VectorIndex(dim=12, seed=3)
        bulk.add_batch([f"k{i}" for i in range(20)], vectors)
        serial = VectorIndex(dim=12, seed=3)
        for i, row in enumerate(vectors):
            serial.add(f"k{i}", row)
        assert bulk.lsh._band_keys == serial.lsh._band_keys

    @settings(max_examples=20, deadline=None)
    @given(st.data())
    def test_random_lifecycle_mmap_equals_eager(self, tmp_path_factory,
                                                data):
        """Property: build → random removes → save → open both ways →
        identical rankings on random queries (both layouts exercised
        through the single-file save each shard uses)."""
        tmp_path = tmp_path_factory.mktemp("prop")
        rng_seed = data.draw(st.integers(0, 2**16))
        n = data.draw(st.integers(5, 60))
        dim = data.draw(st.sampled_from([4, 16]))
        rng = np.random.default_rng(rng_seed)
        vectors = rng.standard_normal((n, dim))
        keys = [f"k{i:04d}" for i in range(n)]
        index = VectorIndex(dim=dim, seed=0)
        index.add_batch(keys, vectors)
        for victim in data.draw(st.lists(st.integers(0, n - 1), max_size=4,
                                         unique=True)):
            if keys[victim] in index:
                index.remove(keys[victim])
        path = index.save(tmp_path / "prop.npz")
        eager = open_index(path)
        mapped = open_index(path, mmap=True)
        queries = rng.standard_normal((4, dim))
        k = data.draw(st.integers(1, n + 1))
        assert _rankings(mapped, queries, k=k) == \
            _rankings(eager, queries, k=k)


class TestQuantizedUnderMmap:
    def _quantized_path(self, tmp_path, n=60):
        index, keys, vectors = _make_index(n=n)
        index.quantize()
        return index.save(tmp_path / "quant.npz"), index, keys, vectors

    def test_quantized_layout_cold_opens_without_reading_data(self,
                                                              tmp_path):
        """Under ``mmap=True`` the int8 sidecar members map straight
        from the file, exactly like the fp vectors — a cold open reads
        headers only, never the vector or sidecar data."""
        path, index, keys, _vectors = self._quantized_path(tmp_path)
        mapped = open_index(path, mmap=True)
        assert mapped.quantized
        for arrays in (mapped.lsh._q8, [mapped.vector(keys[0])]):
            base = arrays[0]
            while base is not None and not isinstance(base, np.memmap):
                base = base.base
            assert isinstance(base, np.memmap)
        q8, scales, norms = mapped.lsh.quantized_arrays()
        want_q8, want_scales, want_norms = index.lsh.quantized_arrays()
        assert np.array_equal(q8, want_q8)
        assert np.array_equal(scales, want_scales)
        assert np.array_equal(norms, want_norms)

    def test_writeback_to_mapped_int8_raises(self, tmp_path):
        path, _index, _keys, _vectors = self._quantized_path(tmp_path)
        mapped = open_index(path, mmap=True)
        row = mapped.lsh._q8[0]
        assert not row.flags.writeable
        with pytest.raises(ValueError):
            row[0] = 7

    def test_mmap_npz_member_handles_non_float_dtypes(self, tmp_path):
        """The hand-rolled npz member parser must map int8 data and
        float32 sidecar members (not just the float64 vectors) with the
        right dtype, shape, and alignment."""
        from repro.index.index import _mmap_npz_member

        path, index, _keys, _vectors = self._quantized_path(tmp_path)
        want_q8, want_scales, want_norms = index.lsh.quantized_arrays()
        q8 = _mmap_npz_member(path, "q8.npy")
        assert q8.dtype == np.int8 and np.array_equal(q8, want_q8)
        scales = _mmap_npz_member(path, "q_scales.npy")
        assert scales.dtype == np.float32
        assert np.array_equal(scales, want_scales)
        norms = _mmap_npz_member(path, "q_norms.npy")
        assert norms.dtype == np.float32
        assert np.array_equal(norms, want_norms)

    def test_quantized_rankings_identical_under_mmap(self, tmp_path):
        path, index, _keys, vectors = self._quantized_path(tmp_path)
        queries = np.vstack([vectors[:4],
                             np.random.default_rng(3).standard_normal(
                                 (4, 16))])
        want = _rankings(index, queries)
        for mmap in (False, True):
            loaded = open_index(path, mmap=mmap, quantized=True)
            assert loaded.use_quantized
            assert _rankings(loaded, queries) == want


class TestTypedIndexesUnderMmap:
    def test_table_and_column_indexes_serve_mapped(self, tmp_path, embedder,
                                                   corpus):
        tables = TableIndex.build(embedder, corpus)
        columns = ColumnIndex.build(embedder, corpus)
        table_path = tables.save(tmp_path / "tables.npz")
        column_path = columns.save(tmp_path / "columns.npz")
        mapped_tables = open_index(table_path, mmap=True)
        mapped_columns = open_index(column_path, mmap=True)
        for table in corpus[:3]:
            want = [(hit.key, hit.score)
                    for hit in tables.query_table(embedder, table, k=3)]
            got = [(hit.key, hit.score)
                   for hit in mapped_tables.query_table(embedder, table,
                                                        k=3)]
            assert got == want
        want = [(hit.key, hit.score)
                for hit in columns.query_column(embedder, corpus[0], 0, k=3)]
        got = [(hit.key, hit.score)
               for hit in mapped_columns.query_column(embedder, corpus[0], 0,
                                                      k=3)]
        assert got == want


class TestSavedPayloadIntact:
    def test_payload_member_unchanged_by_band_keys(self, tmp_path):
        """The JSON payload shape older readers parse is untouched —
        band_keys is purely additive."""
        index, _keys, _vectors = _make_index(n=20)
        path = index.save(tmp_path / "one.npz")
        with np.load(path) as archive:
            payload = json.loads(bytes(archive[_PAYLOAD_KEY]).decode())
        assert payload["format_version"] == 2
        assert set(payload) == {"format_version", "params", "keys", "meta",
                                "tombstones"}
