"""EmbeddingStore tests: cache-key regression, batching equivalence."""

import gc

import numpy as np
import pytest

from repro.index import EmbeddingStore, table_fingerprint
from repro.index.store import _bucketed_batches
from repro.tables import Table


def simple(caption="t", cell="x"):
    return Table(caption, [["a", "b"]], [[cell, "2"]])


class TestCacheKeyRegression:
    """The seed cached pooled vectors under ``id(table)`` — these pin the
    content-addressed replacement."""

    def test_cache_keys_are_content_hashes_not_ids(self, embedder):
        embedder.clear_cache()
        table = simple()
        embedder._pooled(table, "row")
        keys = list(embedder.store._cache)
        assert keys, "pooling should populate the cache"
        for fp, segment in keys:
            assert isinstance(fp, str)          # a digest, never id(table)
            assert fp == table_fingerprint(table)

    def test_equal_content_tables_share_cache_entry(self, embedder):
        embedder.clear_cache()
        t1, t2 = simple(), simple()
        assert t1 is not t2
        first = embedder.column_data_embedding(t1, 0)
        before = len(embedder.store)
        hits_before = embedder.store.stats.hits
        second = embedder.column_data_embedding(t2, 0)
        assert len(embedder.store) == before        # no new entry
        assert embedder.store.stats.hits > hits_before
        assert np.allclose(first, second)

    def test_gc_reused_id_cannot_return_stale_vectors(self, embedder):
        """A table allocated at a GC'd table's address (CPython reuses
        ids) must never see the dead table's vectors."""
        embedder.clear_cache()
        stale = simple(cell="stale")
        stale_id = id(stale)
        stale_vec = embedder.column_data_embedding(stale, 0).copy()
        del stale
        gc.collect()
        for attempt in range(64):
            fresh = simple(cell=f"fresh-{attempt}")
            vec = embedder.column_data_embedding(fresh, 0)
            if id(fresh) == stale_id:
                # Same id as the dead table: with the id-keyed cache this
                # returned stale_vec verbatim.
                assert not np.allclose(vec, stale_vec)
                break
            del fresh
            gc.collect()

    def test_cache_survives_object_lifecycle(self, embedder):
        """Re-creating an equal table after GC is a cache *hit* — the
        property an id-keyed cache could never provide."""
        embedder.clear_cache()
        t = simple(cell="lifecycle")
        first = embedder.column_data_embedding(t, 0).copy()
        del t
        gc.collect()
        misses = embedder.store.stats.misses
        again = embedder.column_data_embedding(simple(cell="lifecycle"), 0)
        assert embedder.store.stats.misses == misses    # pure hit
        assert np.allclose(first, again)


class TestBatchedEncoding:
    def test_batched_matches_lazy_per_table(self, embedder, corpus):
        embedder.clear_cache()
        lazy = [embedder.table_embedding(t, variant="tblcomp1") for t in corpus]
        for batch_size in (1, 4, 32):
            embedder.clear_cache()
            embedder.precompute(corpus, batch_size=batch_size)
            batched = [embedder.table_embedding(t, variant="tblcomp1")
                       for t in corpus]
            for a, b in zip(lazy, batched):
                assert np.allclose(a, b), f"batch_size={batch_size} diverged"

    def test_precompute_counts_entries(self, embedder, corpus):
        embedder.clear_cache()
        encoded = embedder.precompute(corpus)
        assert encoded == 4 * len(corpus)       # four segments per table
        assert embedder.precompute(corpus) == 0  # all cached now

    def test_duplicate_tables_encoded_once(self, embedder):
        embedder.clear_cache()
        t1, t2 = simple(), simple()
        encoded = embedder.store.encode_corpus([t1, t2], segments=("row",))
        assert encoded == 1

    def test_pooled_refs_match_lazy_path(self, embedder, corpus):
        """Batched scatter preserves (CellRef, vector) pairs exactly."""
        table = corpus[0]
        embedder.clear_cache()
        lazy = embedder._pooled(table, "column")
        embedder.clear_cache()
        embedder.precompute(corpus, batch_size=3)
        batched = embedder._pooled(table, "column")
        assert [r for r, _v in lazy] == [r for r, _v in batched]
        for (_r1, v1), (_r2, v2) in zip(lazy, batched):
            assert np.allclose(v1, v2)

    def test_rejects_bad_batch_size(self, embedder, corpus):
        with pytest.raises(ValueError):
            embedder.store.encode_corpus(corpus, batch_size=0)
        with pytest.raises(ValueError):
            EmbeddingStore(embedder.serializer, embedder.models, batch_size=-1)

    def test_rejects_unknown_segment(self, embedder, corpus):
        with pytest.raises(ValueError):
            embedder.store.encode_corpus(corpus, segments=("bogus",))


class TestBucketing:
    def test_batches_respect_size_and_buckets(self):
        lengths = [10, 12, 14, 100, 104, 30, 31]
        order = sorted(range(len(lengths)), key=lengths.__getitem__)
        batches = _bucketed_batches(lengths, order, size=2)
        assert [i for batch in batches for i in batch] == order
        for batch in batches:
            assert len(batch) <= 2
            buckets = {(lengths[i] + 15) // 16 for i in batch}
            assert len(buckets) == 1

    def test_long_sequences_batch_narrow(self):
        lengths = [256] * 8                     # 2 * 256**2 > area budget
        batches = _bucketed_batches(lengths, list(range(8)), size=8)
        assert all(len(b) == 1 for b in batches)
