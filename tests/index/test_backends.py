"""Storage backends + ``open_index`` facade: layout sniffing, legacy
single-file formats (checked-in v1/v2 fixtures), the save/load suffix
regression, and manifest validation."""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.index import (
    MANIFEST_NAME,
    IndexSpec,
    ShardedDirBackend,
    ShardedIndex,
    SingleFileBackend,
    TableIndex,
    VectorIndex,
    open_index,
    save_index,
)

FIXTURES = Path(__file__).resolve().parent / "fixtures"
RNG = np.random.default_rng(7)


def small_index(n: int = 6, dim: int = 8, seed: int = 0) -> VectorIndex:
    index = VectorIndex(dim=dim, seed=seed)
    index.add_batch([f"k{i}" for i in range(n)], RNG.standard_normal((n, dim)))
    return index


def small_sharded(n: int = 12, dim: int = 8, n_shards: int = 3) -> ShardedIndex:
    sharded = ShardedIndex.create(IndexSpec(kind="vector", dim=dim), n_shards)
    sharded.add_batch([f"k{i}" for i in range(n)],
                      RNG.standard_normal((n, dim)))
    return sharded


class TestOpenIndexDispatch:
    def test_single_file(self, tmp_path):
        path = small_index().save(tmp_path / "idx.npz")
        loaded = open_index(path)
        assert type(loaded) is VectorIndex and len(loaded) == 6

    def test_sharded_directory(self, tmp_path):
        path = small_sharded().save(tmp_path / "idx")
        loaded = open_index(path)
        assert isinstance(loaded, ShardedIndex)
        assert loaded.n_shards == 3 and len(loaded) == 12

    def test_missing_path_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no index file"):
            open_index(tmp_path / "ghost.npz")

    def test_directory_without_manifest_rejected(self, tmp_path):
        (tmp_path / "notanindex").mkdir()
        with pytest.raises(FileNotFoundError, match="MANIFEST"):
            open_index(tmp_path / "notanindex")

    def test_save_index_picks_layout(self, tmp_path):
        single = save_index(small_index(), tmp_path / "one.npz")
        assert single.is_file()
        sharded = save_index(small_sharded(), tmp_path / "many")
        assert (sharded / MANIFEST_NAME).is_file()

    def test_backends_report_handling(self, tmp_path):
        file_path = small_index().save(tmp_path / "a.npz")
        dir_path = small_sharded().save(tmp_path / "b")
        assert SingleFileBackend().handles(file_path)
        assert not SingleFileBackend().handles(dir_path)
        assert ShardedDirBackend().handles(dir_path)
        assert not ShardedDirBackend().handles(file_path)


class TestSuffixRegression:
    def test_save_then_load_with_non_npz_suffix(self, tmp_path):
        """save("foo.idx") writes foo.idx.npz (numpy appends); load and
        open_index must find it under the original name instead of
        looking for a never-written foo.npz."""
        index = small_index()
        written = index.save(tmp_path / "foo.idx")
        assert written.name == "foo.idx.npz"
        assert not (tmp_path / "foo.npz").exists()
        for reload in (VectorIndex.load, open_index):
            loaded = reload(tmp_path / "foo.idx")
            assert loaded.keys == index.keys

    def test_suffixless_path_still_loads(self, tmp_path):
        index = small_index()
        index.save(tmp_path / "bare")
        assert open_index(tmp_path / "bare").keys == index.keys

    def test_stray_directory_does_not_preempt_sibling_file(self, tmp_path):
        """A manifest-less directory at the bare path (e.g. an
        interrupted sharded save) must not stop the appended-.npz
        sibling from loading."""
        index = small_index()
        index.save(tmp_path / "tables")          # writes tables.npz
        (tmp_path / "tables").mkdir()            # stray directory
        loaded = open_index(tmp_path / "tables")
        assert loaded.keys == index.keys


class TestLegacyFixtures:
    """Pre-redesign files must keep loading through open_index."""

    def test_v1_fixture_loads(self):
        index = open_index(FIXTURES / "v1-table.npz")
        assert isinstance(index, TableIndex)
        assert index.variant == "tblcomp1"
        assert index.keys == ["fp-alpha", "fp-bravo", "fp-charlie", "fp-delta"]
        assert index.model_id is None            # pre-v2: unknown checkpoint
        assert index.n_tombstones == 0           # v1 had no tombstones
        assert index.corpus == {"dataset": "fixture", "n_tables": 4, "seed": 0}
        hits = index.query_vector(index.vector("fp-bravo"), k=2)
        assert hits[0].key == "fp-bravo"
        assert hits[0].score == pytest.approx(1.0)

    def test_v2_fixture_loads_mid_lifecycle(self):
        index = open_index(FIXTURES / "v2-table.npz")
        assert isinstance(index, TableIndex)
        assert index.model_id == "fixture-model"
        assert index.n_tombstones == 1 and len(index) == 3
        assert "fp-delta" not in index
        hits = index.query_vector(index.vector("fp-alpha"), k=3)
        assert "fp-delta" not in {h.key for h in hits}

    def test_fixture_vectors_match_generator(self):
        """The committed binaries hold the seeded generator vectors —
        guards against regenerating one fixture but not the other."""
        expected = np.random.default_rng(42).standard_normal((4, 8))
        v1 = open_index(FIXTURES / "v1-table.npz")
        v2 = open_index(FIXTURES / "v2-table.npz")
        assert np.allclose(v1.vector("fp-alpha"), expected[0])
        assert np.allclose(v2.vector("fp-alpha"), expected[0])


class TestManifest:
    def test_schema_contents(self, tmp_path):
        sharded = small_sharded()
        sharded.remove("k0")
        path = sharded.save(tmp_path / "idx")
        manifest = json.loads((path / MANIFEST_NAME).read_text())
        assert manifest["manifest_version"] == 1
        assert manifest["n_shards"] == 3
        assert manifest["spec"]["kind"] == "vector"
        assert manifest["spec"]["dim"] == 8
        assert len(manifest["shards"]) == 3
        assert sum(e["entries"] for e in manifest["shards"]) == 11
        assert sum(e["tombstones"] for e in manifest["shards"]) == 1
        assert all((path / e["file"]).is_file() for e in manifest["shards"])

    def test_future_manifest_version_rejected(self, tmp_path):
        path = small_sharded().save(tmp_path / "idx")
        manifest = json.loads((path / MANIFEST_NAME).read_text())
        manifest["manifest_version"] = 99
        (path / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="manifest v99"):
            open_index(path)

    def test_mismatched_shard_rejected(self, tmp_path):
        """A hand-edited manifest cannot smuggle in a shard from a
        different vector space."""
        path = small_sharded(dim=8).save(tmp_path / "idx")
        VectorIndex(dim=4).save(path / "shard-0001.npz")
        with pytest.raises(ValueError, match="dim"):
            open_index(path)

    def test_mismatched_lsh_geometry_rejected(self, tmp_path):
        """Per-shard candidate counts are only comparable when every
        shard hashes through the same hyperplanes — a shard with a
        different LSH seed must fail at load, not skew fan-out."""
        path = small_sharded(dim=8).save(tmp_path / "idx")
        VectorIndex(dim=8, seed=99).save(path / "shard-0001.npz")
        with pytest.raises(ValueError, match="geometry"):
            open_index(path)

    def test_rebalance_to_fewer_shards_drops_stale_files(self, tmp_path):
        sharded = small_sharded(n_shards=4)
        path = sharded.save(tmp_path / "idx")
        assert len(list(path.glob("shard-*.npz"))) == 4
        sharded.rebalance(2)
        sharded.save(path)
        assert len(list(path.glob("shard-*.npz"))) == 2
        assert len(open_index(path)) == 12

    def test_corpus_and_model_id_round_trip(self, tmp_path):
        sharded = small_sharded()
        sharded.corpus = {"dataset": "cancerkg", "n_tables": 12, "seed": 0}
        sharded.model_id = "abc123"
        loaded = open_index(sharded.save(tmp_path / "idx"))
        assert loaded.corpus == sharded.corpus
        assert loaded.model_id == "abc123"
