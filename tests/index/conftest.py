"""Shared fixtures for index tests: a tiny untrained embedder + corpus.

``steps=0`` skips pre-training — inference paths (serialization,
batching, pooling, indexing) are what these tests exercise, and random
initial weights make embeddings distinct enough to rank.
"""

import pytest

from repro.core import TabBiNConfig, TabBiNEmbedder
from repro.datasets import load_dataset


@pytest.fixture(scope="session")
def corpus():
    return load_dataset("cancerkg", n_tables=6, seed=0)


@pytest.fixture(scope="session")
def embedder(corpus):
    emb, _stats = TabBiNEmbedder.build(
        corpus, config=TabBiNConfig.tiny(), steps=0, vocab_size=300, seed=0,
    )
    return emb
