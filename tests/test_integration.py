"""Cross-package integration tests: the whole pipeline, end to end."""

import numpy as np
import pytest

from repro.core import TabBiNConfig, TabBiNEmbedder
from repro.datasets import corpus_stats, load_dataset
from repro.eval import (
    collect_entities,
    column_clustering,
    entity_clustering,
    table_clustering,
)
from repro.metadata import MetadataClassifier, training_set_from_tables
from repro.tables import load_corpus, parse_grid, save_corpus


@pytest.fixture(scope="module")
def corpus():
    return load_dataset("cancerkg", n_tables=18, seed=21)


@pytest.fixture(scope="module")
def embedder(corpus):
    emb, stats = TabBiNEmbedder.build(
        corpus, config=TabBiNConfig.tiny(), steps=40, vocab_size=500, seed=0,
    )
    # Pre-training must actually learn (loss trending down).
    assert stats["row"].improved() or stats["column"].improved()
    return emb


class TestFullPipeline:
    def test_all_three_tasks_beat_chance(self, corpus, embedder):
        rng = np.random.default_rng(0)
        noise = {}

        def random_col(t, j):
            key = (id(t), j)
            if key not in noise:
                noise[key] = rng.standard_normal(8)
            return noise[key]

        cc = column_clustering(corpus, embedder.column_embedding, max_queries=25)
        cc_random = column_clustering(corpus, random_col, max_queries=25)
        assert cc.map_at_k > cc_random.map_at_k

        tc = table_clustering(corpus, embedder.table_embedding)
        assert tc.map_at_k > 0.4

        entities = collect_entities(corpus, max_per_type=15)
        ec = entity_clustering(entities, embedder.entity_embedding,
                               max_queries=20)
        assert ec.map_at_k > 0.3

    def test_same_topic_tables_more_similar(self, corpus, embedder):
        from repro.retrieval import cosine_similarity

        by_topic = {}
        for t in corpus:
            by_topic.setdefault(t.topic, []).append(t)
        topics = [t for t, members in by_topic.items() if len(members) >= 2]
        assert len(topics) >= 2
        a1, a2 = by_topic[topics[0]][:2]
        b1 = by_topic[topics[1]][0]
        va1 = embedder.table_embedding(a1)
        same = cosine_similarity(va1, embedder.table_embedding(a2))
        cross = cosine_similarity(va1, embedder.table_embedding(b1))
        assert same > cross - 0.25  # same topic should not be clearly worse

    def test_corpus_roundtrip_preserves_embedding_inputs(self, corpus, embedder,
                                                         tmp_path):
        path = tmp_path / "corpus.jsonl"
        save_corpus(corpus[:4], path)
        reloaded = load_corpus(path)
        for original, clone in zip(corpus[:4], reloaded):
            v1 = embedder.table_embedding(original)
            v2 = embedder.table_embedding(clone)
            assert np.allclose(v1, v2)

    def test_checkpoint_roundtrip_through_tasks(self, corpus, embedder,
                                                tmp_path):
        embedder.save(tmp_path / "model")
        loaded = TabBiNEmbedder.load(tmp_path / "model",
                                     TabBiNConfig.tiny())
        original = column_clustering(corpus, embedder.column_embedding,
                                     max_queries=10, seed=3)
        reloaded = column_clustering(corpus, loaded.column_embedding,
                                     max_queries=10, seed=3)
        assert original.map_at_k == pytest.approx(reloaded.map_at_k)


class TestMetadataToEmbeddingPipeline:
    def test_raw_grid_to_embedding(self, corpus, embedder):
        """Classifier labels a raw grid -> parse -> embed -> finite."""
        lines, labels = training_set_from_tables(corpus[:8])
        clf = MetadataClassifier("bigru", hidden=10, seed=0)
        clf.fit(lines, labels, epochs=8, lr=2e-2)
        grid = [
            ["Treatment", "Overall Survival", "Response Rate"],
            ["ramucirumab", "20.3 months", "45 %"],
            ["chemotherapy", "15.1 months", "34 %"],
        ]
        n_rows, _n_cols = clf.label_grid(grid)
        table = parse_grid(grid, n_header_rows=n_rows, caption="parsed")
        vec = embedder.table_embedding(table, variant="tblcomp1")
        assert np.isfinite(vec).all()
        assert vec.shape == (3 * embedder.hidden,)


class TestStatsContract:
    def test_generated_statistics_consistent(self, corpus):
        stats = corpus_stats(corpus)
        assert stats.n_tables == len(corpus)
        assert 0.0 <= stats.frac_non_relational <= 1.0
        assert stats.n_nested <= stats.n_tables
        # BiN-heavy corpus by construction.
        assert stats.frac_non_relational > 0.3


class TestAblationEndToEnd:
    def test_ablated_models_produce_different_embeddings(self, corpus):
        """Each Section 4.6 ablation changes the learned representation."""
        base_cfg = TabBiNConfig.tiny()
        base, _ = TabBiNEmbedder.build(corpus[:6], config=base_cfg, steps=3,
                                       vocab_size=400, seed=0)
        for component in ("visibility", "type", "units_nesting", "coords"):
            ablated, _ = TabBiNEmbedder.build(
                corpus[:6], config=base_cfg.ablate(component), steps=3,
                vocab_size=400, seed=0,
            )
            v1 = base.table_embedding(corpus[0])
            v2 = ablated.table_embedding(corpus[0])
            assert not np.allclose(v1, v2), component
