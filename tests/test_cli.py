"""CLI tests (stats / train / evaluate / encode subcommands)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_dataset_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stats", "imaginary"])

    def test_defaults(self):
        args = build_parser().parse_args(["train", "cancerkg"])
        assert args.steps == 80 and args.out is None


class TestStats:
    def test_prints_statistics(self, capsys):
        assert main(["stats", "webtables", "--n-tables", "8"]) == 0
        out = capsys.readouterr().out
        assert "Corpus statistics: webtables" in out
        assert "avg rows" in out and "non-relational" in out


class TestTrainEvaluate:
    def test_train_and_save(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        code = main(["train", "cancerkg", "--n-tables", "6", "--steps", "2",
                     "--vocab-size", "300", "--out", str(ckpt)])
        assert code == 0
        assert (ckpt / "vocab.json").exists()
        assert (ckpt / "row.npz").exists()
        out = capsys.readouterr().out
        assert "Saved checkpoint" in out

    def test_evaluate_from_checkpoint(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        main(["train", "cancerkg", "--n-tables", "8", "--steps", "2",
              "--vocab-size", "300", "--out", str(ckpt)])
        capsys.readouterr()
        code = main(["evaluate", "cancerkg", "--n-tables", "8",
                     "--model", str(ckpt), "--max-queries", "6"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Column Clustering" in out and "Table Clustering" in out


class TestEncode:
    def test_encodes_table(self, capsys):
        code = main(["encode", "cancerkg", "--n-tables", "4", "--table", "0",
                     "--limit", "10", "--vocab-size", "300"])
        assert code == 0
        out = capsys.readouterr().out
        assert "[CLS]" in out
        assert "coords" in out

    def test_bad_table_index(self, capsys):
        code = main(["encode", "cancerkg", "--n-tables", "4", "--table", "99"])
        assert code == 2


class TestIndex:
    @pytest.fixture(scope="class")
    def built(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("index") / "idx"
        code = main(["index", "build", "cancerkg", "--n-tables", "6",
                     "--steps", "0", "--vocab-size", "300",
                     "--out", str(out)])
        assert code == 0
        return out

    def test_build_writes_model_and_indexes(self, built, capsys):
        assert (built / "tables.npz").exists()
        assert (built / "columns.npz").exists()
        assert (built / "model" / "vocab.json").exists()

    def test_query_tables_round_trip(self, built, capsys):
        code = main(["index", "query", "cancerkg", "--n-tables", "6",
                     "--index", str(built), "--table", "1", "--k", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Tables similar to" in out
        assert out.count("0.") >= 3        # three scored neighbours

    def test_query_column_round_trip(self, built, capsys):
        code = main(["index", "query", "cancerkg", "--n-tables", "6",
                     "--index", str(built), "--table", "0", "--column", "0",
                     "--k", "2"])
        assert code == 0
        assert "Columns similar to" in capsys.readouterr().out

    def test_query_bad_table(self, built):
        assert main(["index", "query", "cancerkg", "--n-tables", "6",
                     "--index", str(built), "--table", "99"]) == 2

    def test_query_bad_column(self, built):
        assert main(["index", "query", "cancerkg", "--n-tables", "6",
                     "--index", str(built), "--table", "0",
                     "--column", "99"]) == 2

    def test_build_invalid_workers_rejected_up_front(self, tmp_path, capsys):
        """Bad --workers must fail before the expensive train step, with
        the CLI's stderr + exit-2 contract rather than a traceback."""
        code = main(["index", "build", "cancerkg", "--n-tables", "6",
                     "--steps", "0", "--out", str(tmp_path / "idx"),
                     "--workers", "0"])
        assert code == 2
        assert "--workers must be positive" in capsys.readouterr().err
        assert not (tmp_path / "idx").exists()

    def test_build_empty_corpus_rejected(self, tmp_path, capsys):
        code = main(["index", "build", "cancerkg", "--n-tables", "0",
                     "--steps", "0", "--out", str(tmp_path / "idx")])
        assert code == 2
        assert "empty corpus" in capsys.readouterr().err

    def test_query_corpus_mismatch_rejected(self, built, capsys):
        """Generated corpora are not prefix-stable — querying with other
        corpus arguments than the build must error, not mis-rank."""
        code = main(["index", "query", "cancerkg", "--n-tables", "4",
                     "--index", str(built), "--table", "0"])
        assert code == 2
        assert "built from" in capsys.readouterr().err

    def test_build_with_workers_matches_serial(self, built, tmp_path, capsys):
        """--workers only changes the executor: the saved indexes must be
        byte-for-byte interchangeable with a serial build."""
        import numpy as np

        from repro.index import load_index

        out = tmp_path / "par"
        code = main(["index", "build", "cancerkg", "--n-tables", "6",
                     "--steps", "0", "--vocab-size", "300",
                     "--out", str(out), "--workers", "2"])
        assert code == 0
        assert "2 workers" in capsys.readouterr().out
        serial = load_index(built / "tables.npz")
        parallel = load_index(out / "tables.npz")
        assert serial.keys == parallel.keys
        assert (serial.lsh.vectors() == parallel.lsh.vectors()).all()


class TestShardedIndexCLI:
    """`index build --shards N` + transparent query/rm/compact/merge over
    the sharded directory layout."""

    @pytest.fixture(scope="class")
    def built(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("sharded") / "idx"
        assert main(["index", "build", "cancerkg", "--n-tables", "6",
                     "--steps", "0", "--vocab-size", "300",
                     "--out", str(out), "--shards", "3"]) == 0
        return out

    def test_build_emits_sharded_layout(self, built):
        import json

        assert (built / "tables" / "MANIFEST.json").exists()
        assert (built / "columns" / "MANIFEST.json").exists()
        assert not (built / "tables.npz").exists()
        manifest = json.loads((built / "tables" / "MANIFEST.json").read_text())
        assert manifest["n_shards"] == 3
        assert sum(e["entries"] for e in manifest["shards"]) == 6

    def test_query_tables_over_sharded_layout(self, built, capsys):
        assert main(["index", "query", "cancerkg", "--n-tables", "6",
                     "--index", str(built), "--table", "1", "--k", "3"]) == 0
        out = capsys.readouterr().out
        assert "Tables similar to" in out
        assert out.count("0.") >= 3

    def test_query_columns_over_sharded_layout(self, built, capsys):
        assert main(["index", "query", "cancerkg", "--n-tables", "6",
                     "--index", str(built), "--table", "0", "--column", "0",
                     "--k", "2"]) == 0
        assert "Columns similar to" in capsys.readouterr().out

    def test_sharded_query_matches_single_file_build(self, built,
                                                     tmp_path_factory,
                                                     capsys):
        """Same corpus, same checkpoint config: the sharded and the
        single-file layout must print identical rankings."""
        single = tmp_path_factory.mktemp("single") / "idx"
        assert main(["index", "build", "cancerkg", "--n-tables", "6",
                     "--steps", "0", "--vocab-size", "300",
                     "--out", str(single)]) == 0
        capsys.readouterr()
        assert main(["index", "query", "cancerkg", "--n-tables", "6",
                     "--index", str(single), "--table", "1", "--k", "4"]) == 0
        single_out = capsys.readouterr().out
        assert main(["index", "query", "cancerkg", "--n-tables", "6",
                     "--index", str(built), "--table", "1", "--k", "4"]) == 0
        assert capsys.readouterr().out == single_out

    def test_rm_and_compact_on_sharded_dir(self, built, tmp_path, capsys):
        import shutil

        from repro.index import open_index

        copy = tmp_path / "tables"
        shutil.copytree(built / "tables", copy)
        key = TestIndexLifecycleCLI.corpus_key(0)
        assert main(["index", "rm", str(copy), key]) == 0
        assert "1 tombstoned" in capsys.readouterr().out
        index = open_index(copy)
        assert key not in index and index.n_tombstones == 1
        assert main(["index", "compact", str(copy)]) == 0
        assert "reclaimed 1" in capsys.readouterr().out
        assert open_index(copy).n_tombstones == 0

    def test_merge_mixed_layouts(self, built, tmp_path, capsys):
        """First input sharded, second single-file: merge dedupes and
        keeps the sharded layout."""
        import shutil

        from repro.index import ShardedIndex, open_index

        left = tmp_path / "left"
        shutil.copytree(built / "tables", left)
        key = TestIndexLifecycleCLI.corpus_key(0)
        main(["index", "rm", str(left), key, "--compact"])
        capsys.readouterr()
        single = tmp_path / "single"
        assert main(["index", "build", "cancerkg", "--n-tables", "6",
                     "--steps", "0", "--vocab-size", "300",
                     "--out", str(single)]) == 0
        capsys.readouterr()
        merged = tmp_path / "merged"
        assert main(["index", "merge", str(left),
                     str(single / "tables.npz"), "--out", str(merged)]) == 0
        assert "fingerprint-deduped" in capsys.readouterr().out
        result = open_index(merged)
        assert isinstance(result, ShardedIndex)       # first input's layout
        assert len(result) == 6                       # removed key restored

    def test_rebuild_switching_layout_replaces_stale_artifacts(self, tmp_path,
                                                               capsys):
        """Rebuilding the same --out with the other layout must not
        leave the previous artifact behind — open_index sniffs the
        manifest directory first and would silently serve stale
        results."""
        out = tmp_path / "idx"
        assert main(["index", "build", "cancerkg", "--n-tables", "4",
                     "--steps", "0", "--vocab-size", "300",
                     "--out", str(out), "--shards", "2"]) == 0
        assert main(["index", "build", "cancerkg", "--n-tables", "6",
                     "--steps", "0", "--vocab-size", "300",
                     "--out", str(out)]) == 0
        assert not (out / "tables").exists()          # stale dirs removed
        assert not (out / "columns").exists()
        capsys.readouterr()
        # The 4-table sharded build is gone: querying as the 6-table
        # corpus must hit the fresh single-file index, not error out.
        assert main(["index", "query", "cancerkg", "--n-tables", "6",
                     "--index", str(out), "--table", "0", "--k", "2"]) == 0
        assert "Tables similar to" in capsys.readouterr().out
        # And back: single-file -> sharded removes the stale .npz.
        assert main(["index", "build", "cancerkg", "--n-tables", "6",
                     "--steps", "0", "--vocab-size", "300",
                     "--out", str(out), "--shards", "2"]) == 0
        assert not (out / "tables.npz").exists()

    def test_remerge_switching_layout_replaces_stale_output(self, built,
                                                            tmp_path, capsys):
        """Re-running merge at the same --out with the other first-input
        layout must replace the old artifact (a stale manifest dir
        would out-sniff a fresh .npz; a stale file blocks the dir)."""
        from repro.index import ShardedIndex, VectorIndex, open_index

        single = tmp_path / "single"
        assert main(["index", "build", "cancerkg", "--n-tables", "6",
                     "--steps", "0", "--vocab-size", "300",
                     "--out", str(single)]) == 0
        out = tmp_path / "merged"
        assert main(["index", "merge", str(built / "tables"),
                     str(single / "tables.npz"), "--out", str(out)]) == 0
        assert isinstance(open_index(out), ShardedIndex)
        assert main(["index", "merge", str(single / "tables.npz"),
                     str(built / "tables"), "--out", str(out)]) == 0
        assert isinstance(open_index(out), VectorIndex)
        assert main(["index", "merge", str(built / "tables"),
                     str(single / "tables.npz"), "--out", str(out)]) == 0
        assert isinstance(open_index(out), ShardedIndex)

    def test_query_future_format_exits_2(self, built, tmp_path, capsys):
        """A newer manifest version must exit 2 with the version
        message, matching the lifecycle commands' contract."""
        import json
        import shutil

        broken = tmp_path / "idx"
        shutil.copytree(built, broken)
        manifest_path = broken / "tables" / "MANIFEST.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["manifest_version"] = 99
        manifest_path.write_text(json.dumps(manifest))
        code = main(["index", "query", "cancerkg", "--n-tables", "6",
                     "--index", str(broken), "--table", "0"])
        assert code == 2
        assert "manifest v99" in capsys.readouterr().err

    def test_build_invalid_shards_rejected(self, tmp_path, capsys):
        code = main(["index", "build", "cancerkg", "--n-tables", "6",
                     "--steps", "0", "--out", str(tmp_path / "idx"),
                     "--shards", "0"])
        assert code == 2
        assert "--shards must be at least 1" in capsys.readouterr().err
        assert not (tmp_path / "idx").exists()

    def test_query_invalid_k_rejected(self, built, capsys):
        """k < 1 exits 2 with a message instead of silently returning an
        empty (or nonsensical) ranking."""
        for bad_k in ("0", "-3"):
            code = main(["index", "query", "cancerkg", "--n-tables", "6",
                         "--index", str(built), "--table", "0", "--k", bad_k])
            assert code == 2
            assert "must be at least 1" in capsys.readouterr().err


class TestIndexLifecycleCLI:
    """`index rm` / `index compact` / `index merge` end-to-end on a tmp
    corpus, including the error paths."""

    @pytest.fixture(scope="class")
    def built(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("lifecycle") / "idx"
        assert main(["index", "build", "cancerkg", "--n-tables", "6",
                     "--steps", "0", "--vocab-size", "300",
                     "--out", str(out)]) == 0
        return out

    @pytest.fixture()
    def tables_npz(self, built, tmp_path):
        """A throwaway copy of the built table index, so destructive
        subcommands can't leak between tests."""
        import shutil

        copy = tmp_path / "tables.npz"
        shutil.copy(built / "tables.npz", copy)
        return copy

    @staticmethod
    def corpus_key(position: int) -> str:
        from repro.datasets import load_dataset
        from repro.index import table_fingerprint

        tables = load_dataset("cancerkg", n_tables=6, seed=0)
        return table_fingerprint(tables[position])

    def test_rm_tombstones_and_persists(self, tables_npz, capsys):
        from repro.index import load_index

        key = self.corpus_key(0)
        assert main(["index", "rm", str(tables_npz), key]) == 0
        assert "1 tombstoned" in capsys.readouterr().out
        index = load_index(tables_npz)
        assert key not in index
        assert index.n_tombstones == 1 and len(index) == 5

    def test_rm_compact_flag_reclaims(self, tables_npz, capsys):
        from repro.index import load_index

        key = self.corpus_key(1)
        assert main(["index", "rm", str(tables_npz), key, "--compact"]) == 0
        index = load_index(tables_npz)
        assert index.n_tombstones == 0 and len(index) == 5

    def test_rm_missing_key_errors_without_mutating(self, tables_npz, capsys):
        from repro.index import load_index

        code = main(["index", "rm", str(tables_npz), self.corpus_key(0),
                     "no-such-fingerprint"])
        assert code == 2
        assert "not in index" in capsys.readouterr().err
        assert len(load_index(tables_npz)) == 6     # untouched

    def test_rm_missing_file_errors(self, tmp_path, capsys):
        assert main(["index", "rm", str(tmp_path / "ghost.npz"), "k"]) == 2
        assert "no index file" in capsys.readouterr().err

    def test_compact_round_trip(self, tables_npz, capsys):
        from repro.index import load_index

        main(["index", "rm", str(tables_npz), self.corpus_key(2)])
        capsys.readouterr()
        assert main(["index", "compact", str(tables_npz)]) == 0
        assert "reclaimed 1" in capsys.readouterr().out
        assert load_index(tables_npz).n_tombstones == 0

    def test_query_after_rm_never_returns_removed(self, built, tmp_path,
                                                  capsys, monkeypatch):
        """Full loop: rm via CLI, then query via CLI on the same corpus —
        the removed table's caption must be gone from the ranking."""
        import shutil

        from repro.datasets import load_dataset

        index_dir = tmp_path / "idx"
        shutil.copytree(built, index_dir)
        removed = load_dataset("cancerkg", n_tables=6, seed=0)[2]
        main(["index", "rm", str(index_dir / "tables.npz"),
              self.corpus_key(2)])
        capsys.readouterr()
        assert main(["index", "query", "cancerkg", "--n-tables", "6",
                     "--index", str(index_dir), "--table", "0",
                     "--k", "5"]) == 0
        out = capsys.readouterr().out
        assert removed.caption not in out

    def test_merge_dedupes(self, built, tables_npz, tmp_path, capsys):
        from repro.index import load_index

        merged = tmp_path / "merged.npz"
        assert main(["index", "merge", str(tables_npz),
                     str(built / "tables.npz"), "--out", str(merged)]) == 0
        assert "fingerprint-deduped" in capsys.readouterr().out
        assert len(load_index(merged)) == 6         # full overlap

    def test_merge_disjoint_after_rm(self, built, tmp_path, capsys):
        from repro.index import load_index

        left = tmp_path / "left.npz"
        import shutil

        shutil.copy(built / "tables.npz", left)
        main(["index", "rm", str(left), self.corpus_key(0),
              self.corpus_key(1), "--compact"])
        capsys.readouterr()
        merged = tmp_path / "merged.npz"
        assert main(["index", "merge", str(left), str(built / "tables.npz"),
                     "--out", str(merged)]) == 0
        assert len(load_index(merged)) == 6         # removed pair restored

    def test_merge_incompatible_params_errors(self, built, tmp_path, capsys):
        code = main(["index", "merge", str(built / "tables.npz"),
                     str(built / "columns.npz"),
                     "--out", str(tmp_path / "bad.npz")])
        assert code == 2
        err = capsys.readouterr().err
        assert "cannot merge" in err and "incompatible" in err
        assert not (tmp_path / "bad.npz").exists()

    def test_merge_missing_input_errors(self, built, tmp_path, capsys):
        assert main(["index", "merge", str(built / "tables.npz"),
                     str(tmp_path / "ghost.npz"),
                     "--out", str(tmp_path / "m.npz")]) == 2
        assert "no index file" in capsys.readouterr().err

    def test_merge_single_input_rejected(self, built, tmp_path, capsys):
        """One path would silently copy instead of merging."""
        assert main(["index", "merge", str(built / "tables.npz"),
                     "--out", str(tmp_path / "m.npz")]) == 2
        assert "at least two" in capsys.readouterr().err
        assert not (tmp_path / "m.npz").exists()

    def test_merge_different_checkpoints_rejected(self, built, tmp_path,
                                                  capsys):
        """Indexes built from different trained models share dim and
        variant but not an embedding space — merging must refuse."""
        other = tmp_path / "other"
        assert main(["index", "build", "cancerkg", "--n-tables", "6",
                     "--steps", "1", "--vocab-size", "300", "--seed", "0",
                     "--out", str(other)]) == 0
        capsys.readouterr()
        code = main(["index", "merge", str(built / "tables.npz"),
                     str(other / "tables.npz"),
                     "--out", str(tmp_path / "m.npz")])
        assert code == 2
        assert "model_id" in capsys.readouterr().err


class TestConcurrentQueryCLI:
    """`index query --batch FILE --jobs N` (many queries per call, JSON
    lines out) and `index build --jobs N` (parallel per-shard builds)."""

    @pytest.fixture(scope="class")
    def built(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("concurrent") / "idx"
        assert main(["index", "build", "cancerkg", "--n-tables", "6",
                     "--steps", "0", "--vocab-size", "300",
                     "--out", str(out), "--shards", "2"]) == 0
        return out

    @pytest.fixture(scope="class")
    def queries(self, built):
        """Three raw query vectors: two stored embeddings + their mean."""
        import numpy as np

        from repro.index import open_index

        index = open_index(built / "tables")
        keys = sorted(key for key, _vec, _meta in index.live_items())[:2]
        vectors = np.stack([index.vector(key) for key in keys])
        return np.vstack([vectors, vectors.mean(axis=0)])

    def expected(self, built, queries, k=3, excludes=None):
        """Serial query_vector baseline; scores rounded to 9 places (the
        repo's equivalence convention — batched scores match serial ones
        to floating-point roundoff, rankings exactly)."""
        from repro.index import open_index

        index = open_index(built / "tables")
        excludes = excludes or [None] * len(queries)
        return [[(h.key, round(h.score, 9))
                 for h in index.query_vector(q, k, exclude=e)]
                for q, e in zip(queries, excludes)]

    def parse_lines(self, out):
        import json

        records = [json.loads(line) for line in out.strip().splitlines()]
        assert [r["query"] for r in records] == list(range(len(records)))
        return [[(hit["key"], round(hit["score"], 9)) for hit in r["hits"]]
                for r in records]

    def test_batch_npz_matches_serial_queries(self, built, queries, tmp_path,
                                              capsys):
        import numpy as np

        batch = tmp_path / "queries.npz"
        np.savez(batch, queries=queries)
        assert main(["index", "query", "cancerkg", "--index", str(built),
                     "--batch", str(batch), "--k", "3", "--jobs", "2"]) == 0
        got = self.parse_lines(capsys.readouterr().out)
        assert got == self.expected(built, queries, k=3)

    def test_batch_jsonl_with_excludes(self, built, queries, tmp_path,
                                       capsys):
        import json

        from repro.index import open_index

        index = open_index(built / "tables")
        keys = sorted(key for key, _vec, _meta in index.live_items())
        batch = tmp_path / "queries.jsonl"
        lines = [json.dumps({"vector": list(queries[0]),
                             "exclude": keys[0]}),
                 json.dumps(list(queries[1]))]
        batch.write_text("\n".join(lines) + "\n")
        assert main(["index", "query", "cancerkg", "--index", str(built),
                     "--batch", str(batch), "--k", "3"]) == 0
        got = self.parse_lines(capsys.readouterr().out)
        assert got == self.expected(built, queries[:2], k=3,
                                    excludes=[keys[0], None])
        assert keys[0] not in {key for key, _score in got[0]}

    def test_batch_works_on_single_file_layout(self, queries, tmp_path,
                                               capsys):
        """--batch goes through open_index, so it serves either layout."""
        import numpy as np

        single = tmp_path / "single"
        assert main(["index", "build", "cancerkg", "--n-tables", "6",
                     "--steps", "0", "--vocab-size", "300",
                     "--out", str(single)]) == 0
        batch = tmp_path / "queries.npz"
        np.savez(batch, queries=queries)
        capsys.readouterr()
        assert main(["index", "query", "cancerkg", "--index", str(single),
                     "--batch", str(batch), "--k", "2"]) == 0
        got = self.parse_lines(capsys.readouterr().out)
        assert got == self.expected(single, queries, k=2)

    def test_batch_dim_mismatch_rejected(self, built, tmp_path, capsys):
        import numpy as np

        batch = tmp_path / "bad_dim.npz"
        np.savez(batch, queries=np.zeros((2, 3)))
        assert main(["index", "query", "cancerkg", "--index", str(built),
                     "--batch", str(batch)]) == 2
        assert "dim" in capsys.readouterr().err

    def test_batch_with_column_arg_rejected(self, built, tmp_path, capsys):
        import numpy as np

        batch = tmp_path / "queries.npz"
        np.savez(batch, queries=np.zeros((1, 4)))
        assert main(["index", "query", "cancerkg", "--index", str(built),
                     "--batch", str(batch), "--column", "0"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_batch_malformed_jsonl_rejected(self, built, tmp_path, capsys):
        batch = tmp_path / "bad.jsonl"
        batch.write_text('{"vector": [1, 2]}\nnot json\n')
        assert main(["index", "query", "cancerkg", "--index", str(built),
                     "--batch", str(batch)]) == 2
        assert "bad.jsonl:2" in capsys.readouterr().err

    def test_batch_ragged_jsonl_rejected(self, built, tmp_path, capsys):
        batch = tmp_path / "ragged.jsonl"
        batch.write_text("[1.0, 2.0]\n[1.0, 2.0, 3.0]\n")
        assert main(["index", "query", "cancerkg", "--index", str(built),
                     "--batch", str(batch)]) == 2
        assert "ragged.jsonl:2" in capsys.readouterr().err

    def test_batch_missing_file_rejected(self, built, capsys):
        assert main(["index", "query", "cancerkg", "--index", str(built),
                     "--batch", "/nonexistent/queries.npz"]) == 2
        assert "no query batch file" in capsys.readouterr().err

    def test_bad_jobs_rejected(self, built, capsys):
        assert main(["index", "query", "cancerkg", "--n-tables", "6",
                     "--index", str(built), "--table", "0",
                     "--jobs", "0"]) == 2
        assert "--jobs must be positive" in capsys.readouterr().err

    def test_single_query_with_jobs_identical_output(self, built, capsys):
        assert main(["index", "query", "cancerkg", "--n-tables", "6",
                     "--index", str(built), "--table", "1", "--k", "3"]) == 0
        serial_out = capsys.readouterr().out
        assert main(["index", "query", "cancerkg", "--n-tables", "6",
                     "--index", str(built), "--table", "1", "--k", "3",
                     "--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial_out

    def test_build_jobs_requires_shards(self, tmp_path, capsys):
        assert main(["index", "build", "cancerkg", "--n-tables", "6",
                     "--steps", "0", "--out", str(tmp_path / "idx"),
                     "--jobs", "2"]) == 2
        assert "requires --shards" in capsys.readouterr().err
        assert not (tmp_path / "idx").exists()

    def test_build_invalid_jobs_rejected_up_front(self, tmp_path, capsys):
        assert main(["index", "build", "cancerkg", "--n-tables", "6",
                     "--steps", "0", "--out", str(tmp_path / "idx"),
                     "--shards", "2", "--jobs", "0"]) == 2
        assert "--jobs must be positive" in capsys.readouterr().err

    def test_build_with_jobs_matches_serial_sharded_build(self, built,
                                                          tmp_path, capsys):
        """--jobs only changes the executor: the emitted sharded layout
        must be entry-for-entry identical to the serial build."""
        import numpy as np

        from repro.index import open_index

        out = tmp_path / "par"
        assert main(["index", "build", "cancerkg", "--n-tables", "6",
                     "--steps", "0", "--vocab-size", "300",
                     "--out", str(out), "--shards", "2", "--jobs", "2"]) == 0
        capsys.readouterr()
        serial = open_index(built / "tables")
        parallel = open_index(out / "tables")
        for ours, theirs in zip(parallel.shards, serial.shards):
            assert ours.keys == theirs.keys
            assert np.array_equal(ours.lsh.vectors(), theirs.lsh.vectors())


class TestBatchStreaming:
    """`index query --batch` streams JSON lines as chunks complete
    instead of buffering the whole run (regression: the first version
    held every result until the end)."""

    DIM = 8
    N_QUERIES = 6

    @pytest.fixture()
    def built(self, tmp_path):
        """A raw table-kind index — no embedder needed for --batch."""
        import numpy as np

        from repro.index import TableIndex

        rng = np.random.default_rng(0)
        index = TableIndex(dim=self.DIM, seed=0)
        index.add_batch([f"fp{i:03d}" for i in range(20)],
                        rng.standard_normal((20, self.DIM)))
        index.save(tmp_path / "idx" / "tables.npz")
        return tmp_path / "idx"

    @pytest.fixture()
    def batch_file(self, tmp_path):
        import json as json_mod

        import numpy as np

        rows = np.random.default_rng(1).standard_normal(
            (self.N_QUERIES, self.DIM))
        path = tmp_path / "queries.jsonl"
        path.write_text("\n".join(json_mod.dumps([float(x) for x in row])
                                  for row in rows) + "\n")
        return path

    def test_output_streams_before_later_chunks_run(self, built, batch_file,
                                                    monkeypatch):
        """By the time chunk N's query_many runs, chunks 0..N-1 must
        already be printed — captured by counting emitted lines at each
        query_many call."""
        import io
        import json as json_mod
        import sys as sys_mod

        import repro.index as index_mod

        buffer = io.StringIO()
        lines_at_call: list[int] = []
        real_open = index_mod.open_index

        class Recording:
            def __init__(self, inner):
                self._inner = inner

            def __getattr__(self, name):
                return getattr(self._inner, name)

            def query_many(self, *args, **kwargs):
                lines_at_call.append(buffer.getvalue().count("\n"))
                return self._inner.query_many(*args, **kwargs)

        monkeypatch.setattr(index_mod, "open_index",
                            lambda path, **kw: Recording(real_open(path,
                                                                   **kw)))
        monkeypatch.setattr(sys_mod, "stdout", buffer)
        assert main(["index", "query", "cancerkg", "--index", str(built),
                     "--batch", str(batch_file), "--chunk", "2",
                     "--k", "3"]) == 0
        # 6 queries at chunk=2: three calls, each seeing the previous
        # chunks' lines already flushed.
        assert lines_at_call == [0, 2, 4]
        records = [json_mod.loads(line)
                   for line in buffer.getvalue().splitlines()]
        assert [record["query"] for record in records] == \
            list(range(self.N_QUERIES))

    def test_chunked_output_equals_unchunked(self, built, batch_file,
                                             capsys):
        assert main(["index", "query", "cancerkg", "--index", str(built),
                     "--batch", str(batch_file), "--chunk", "2",
                     "--k", "4"]) == 0
        chunked = capsys.readouterr().out
        assert main(["index", "query", "cancerkg", "--index", str(built),
                     "--batch", str(batch_file), "--chunk", "1000",
                     "--k", "4"]) == 0
        assert capsys.readouterr().out == chunked
        assert len(chunked.strip().splitlines()) == self.N_QUERIES

    def test_bad_chunk_rejected(self, built, batch_file, capsys):
        assert main(["index", "query", "cancerkg", "--index", str(built),
                     "--batch", str(batch_file), "--chunk", "0"]) == 2
        assert "--chunk must be at least 1" in capsys.readouterr().err

    def test_broken_pipe_exits_cleanly(self, built, batch_file,
                                       monkeypatch):
        """`... --batch | head` closes the pipe mid-stream: the command
        must stop producing and exit 0, not traceback (streaming made
        this reachable on every chunk boundary)."""
        import io
        import sys as sys_mod

        class ClosedPipe(io.StringIO):
            def __init__(self):
                super().__init__()
                self.writes = 0

            def write(self, text):
                self.writes += 1
                if self.writes > 1:
                    raise BrokenPipeError
                return super().write(text)

        monkeypatch.setattr(sys_mod, "stdout", ClosedPipe())
        assert main(["index", "query", "cancerkg", "--index", str(built),
                     "--batch", str(batch_file), "--chunk", "2",
                     "--k", "3"]) == 0


class TestIndexQuantizeCLI:
    """`index quantize` retrofit + `index build --quantize`, end to end."""

    @pytest.fixture()
    def saved(self, tmp_path):
        import numpy as np

        from repro.index import VectorIndex

        rng = np.random.default_rng(0)
        index = VectorIndex(dim=12, seed=0)
        vectors = rng.standard_normal((40, 12))
        vectors[1::3] = vectors[::3][:len(vectors[1::3])]   # dense ties
        index.add_batch([f"k{i:03d}" for i in range(40)], vectors)
        return index.save(tmp_path / "tables.npz"), vectors

    def test_quantize_retrofits_in_place(self, saved, capsys):
        import numpy as np

        from repro.index import open_index

        path, vectors = saved
        assert main(["index", "quantize", str(path)]) == 0
        assert "int8 sidecar over 40 vectors" in capsys.readouterr().out
        with np.load(path) as archive:
            assert {"q8", "q_scales", "q_norms"} <= set(archive.files)
        quant = open_index(path, quantized=True)
        plain = open_index(path)
        want = [[(h.key, h.score) for h in hits]
                for hits in plain.query_many(vectors[:4], k=6)]
        got = [[(h.key, h.score) for h in hits]
               for hits in quant.query_many(vectors[:4], k=6)]
        assert got == want

    def test_quantize_is_idempotent_refresh(self, saved, capsys):
        path, _vectors = saved
        assert main(["index", "quantize", str(path)]) == 0
        before = path.read_bytes()
        assert main(["index", "quantize", str(path)]) == 0
        assert "Refreshed" in capsys.readouterr().out
        assert path.read_bytes() == before

    def test_quantize_missing_path_exits_2(self, tmp_path, capsys):
        assert main(["index", "quantize", str(tmp_path / "ghost.npz")]) == 2
        assert capsys.readouterr().err

    def test_lifecycle_after_quantize_keeps_sidecar_fresh(self, saved):
        """rm --compact on a quantized layout rewrites the sidecar in
        lockstep — never stale int8 next to mutated fp vectors."""
        import numpy as np

        from repro.index import open_index
        from repro.retrieval import quantize_rows

        path, _vectors = saved
        assert main(["index", "quantize", str(path)]) == 0
        assert main(["index", "rm", str(path), "k000", "--compact"]) == 0
        reloaded = open_index(path, quantized=True)
        want = quantize_rows(np.stack(reloaded.lsh._vectors))
        got = reloaded.lsh.quantized_arrays()
        for got_arr, want_arr in zip(got, want):
            assert np.array_equal(got_arr, want_arr)

    def test_quantize_sharded_layout(self, tmp_path):
        import numpy as np

        from repro.index import IndexSpec, ShardedIndex, open_index

        rng = np.random.default_rng(1)
        sharded = ShardedIndex.create(
            IndexSpec(kind="vector", dim=8, seed=0), 3)
        vectors = rng.standard_normal((30, 8))
        sharded.add_batch([f"s{i:03d}" for i in range(30)], vectors)
        path = sharded.save(tmp_path / "layout")
        assert main(["index", "quantize", str(path)]) == 0
        reopened = open_index(path, quantized=True)
        assert reopened.quantized and reopened.use_quantized
        plain = open_index(path)
        want = [[(h.key, h.score) for h in hits]
                for hits in plain.query_many(vectors[:3], k=5)]
        got = [[(h.key, h.score) for h in hits]
               for hits in reopened.query_many(vectors[:3], k=5)]
        assert got == want
