"""CLI tests (stats / train / evaluate / encode subcommands)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_dataset_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stats", "imaginary"])

    def test_defaults(self):
        args = build_parser().parse_args(["train", "cancerkg"])
        assert args.steps == 80 and args.out is None


class TestStats:
    def test_prints_statistics(self, capsys):
        assert main(["stats", "webtables", "--n-tables", "8"]) == 0
        out = capsys.readouterr().out
        assert "Corpus statistics: webtables" in out
        assert "avg rows" in out and "non-relational" in out


class TestTrainEvaluate:
    def test_train_and_save(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        code = main(["train", "cancerkg", "--n-tables", "6", "--steps", "2",
                     "--vocab-size", "300", "--out", str(ckpt)])
        assert code == 0
        assert (ckpt / "vocab.json").exists()
        assert (ckpt / "row.npz").exists()
        out = capsys.readouterr().out
        assert "Saved checkpoint" in out

    def test_evaluate_from_checkpoint(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        main(["train", "cancerkg", "--n-tables", "8", "--steps", "2",
              "--vocab-size", "300", "--out", str(ckpt)])
        capsys.readouterr()
        code = main(["evaluate", "cancerkg", "--n-tables", "8",
                     "--model", str(ckpt), "--max-queries", "6"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Column Clustering" in out and "Table Clustering" in out


class TestEncode:
    def test_encodes_table(self, capsys):
        code = main(["encode", "cancerkg", "--n-tables", "4", "--table", "0",
                     "--limit", "10", "--vocab-size", "300"])
        assert code == 0
        out = capsys.readouterr().out
        assert "[CLS]" in out
        assert "coords" in out

    def test_bad_table_index(self, capsys):
        code = main(["encode", "cancerkg", "--n-tables", "4", "--table", "99"])
        assert code == 2
