"""CLI tests (stats / train / evaluate / encode subcommands)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_dataset_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stats", "imaginary"])

    def test_defaults(self):
        args = build_parser().parse_args(["train", "cancerkg"])
        assert args.steps == 80 and args.out is None


class TestStats:
    def test_prints_statistics(self, capsys):
        assert main(["stats", "webtables", "--n-tables", "8"]) == 0
        out = capsys.readouterr().out
        assert "Corpus statistics: webtables" in out
        assert "avg rows" in out and "non-relational" in out


class TestTrainEvaluate:
    def test_train_and_save(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        code = main(["train", "cancerkg", "--n-tables", "6", "--steps", "2",
                     "--vocab-size", "300", "--out", str(ckpt)])
        assert code == 0
        assert (ckpt / "vocab.json").exists()
        assert (ckpt / "row.npz").exists()
        out = capsys.readouterr().out
        assert "Saved checkpoint" in out

    def test_evaluate_from_checkpoint(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        main(["train", "cancerkg", "--n-tables", "8", "--steps", "2",
              "--vocab-size", "300", "--out", str(ckpt)])
        capsys.readouterr()
        code = main(["evaluate", "cancerkg", "--n-tables", "8",
                     "--model", str(ckpt), "--max-queries", "6"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Column Clustering" in out and "Table Clustering" in out


class TestEncode:
    def test_encodes_table(self, capsys):
        code = main(["encode", "cancerkg", "--n-tables", "4", "--table", "0",
                     "--limit", "10", "--vocab-size", "300"])
        assert code == 0
        out = capsys.readouterr().out
        assert "[CLS]" in out
        assert "coords" in out

    def test_bad_table_index(self, capsys):
        code = main(["encode", "cancerkg", "--n-tables", "4", "--table", "99"])
        assert code == 2


class TestIndex:
    @pytest.fixture(scope="class")
    def built(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("index") / "idx"
        code = main(["index", "build", "cancerkg", "--n-tables", "6",
                     "--steps", "0", "--vocab-size", "300",
                     "--out", str(out)])
        assert code == 0
        return out

    def test_build_writes_model_and_indexes(self, built, capsys):
        assert (built / "tables.npz").exists()
        assert (built / "columns.npz").exists()
        assert (built / "model" / "vocab.json").exists()

    def test_query_tables_round_trip(self, built, capsys):
        code = main(["index", "query", "cancerkg", "--n-tables", "6",
                     "--index", str(built), "--table", "1", "--k", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Tables similar to" in out
        assert out.count("0.") >= 3        # three scored neighbours

    def test_query_column_round_trip(self, built, capsys):
        code = main(["index", "query", "cancerkg", "--n-tables", "6",
                     "--index", str(built), "--table", "0", "--column", "0",
                     "--k", "2"])
        assert code == 0
        assert "Columns similar to" in capsys.readouterr().out

    def test_query_bad_table(self, built):
        assert main(["index", "query", "cancerkg", "--n-tables", "6",
                     "--index", str(built), "--table", "99"]) == 2

    def test_query_bad_column(self, built):
        assert main(["index", "query", "cancerkg", "--n-tables", "6",
                     "--index", str(built), "--table", "0",
                     "--column", "99"]) == 2

    def test_build_empty_corpus_rejected(self, tmp_path, capsys):
        code = main(["index", "build", "cancerkg", "--n-tables", "0",
                     "--steps", "0", "--out", str(tmp_path / "idx")])
        assert code == 2
        assert "empty corpus" in capsys.readouterr().err

    def test_query_corpus_mismatch_rejected(self, built, capsys):
        """Generated corpora are not prefix-stable — querying with other
        corpus arguments than the build must error, not mis-rank."""
        code = main(["index", "query", "cancerkg", "--n-tables", "4",
                     "--index", str(built), "--table", "0"])
        assert code == 2
        assert "built from" in capsys.readouterr().err
