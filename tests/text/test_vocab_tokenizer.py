"""Vocabulary and WordPiece tokenizer tests."""

import pytest

from repro.text import (
    CLS,
    MASK,
    PAD,
    SEP,
    SPECIAL_TOKENS,
    UNK,
    VAL,
    Vocabulary,
    WordPieceTokenizer,
    is_number_token,
    pretokenize,
)

CORPUS = [
    "overall survival months ramucirumab treatment",
    "treatment efficacy survival rate response",
    "patient cohort previously untreated treatment",
    "hazard ratio progression free survival",
] * 4


class TestVocabulary:
    def test_special_tokens_first(self):
        vocab = Vocabulary()
        for i, tok in enumerate(SPECIAL_TOKENS):
            assert vocab.token(i) == tok
            assert vocab.id(tok) == i

    def test_add_idempotent(self):
        vocab = Vocabulary()
        a = vocab.add("hello")
        b = vocab.add("hello")
        assert a == b
        assert len(vocab) == len(SPECIAL_TOKENS) + 1

    def test_unknown_maps_to_unk(self):
        vocab = Vocabulary()
        assert vocab.id("nonexistent") == vocab.unk_id

    def test_convenience_ids(self):
        vocab = Vocabulary()
        assert vocab.token(vocab.pad_id) == PAD
        assert vocab.token(vocab.cls_id) == CLS
        assert vocab.token(vocab.sep_id) == SEP
        assert vocab.token(vocab.mask_id) == MASK
        assert vocab.token(vocab.val_id) == VAL
        assert vocab.token(vocab.unk_id) == UNK

    def test_special_ids_set(self):
        vocab = Vocabulary()
        assert len(vocab.special_ids()) == len(SPECIAL_TOKENS)

    def test_save_load_roundtrip(self, tmp_path):
        vocab = Vocabulary(["alpha", "beta"])
        path = tmp_path / "vocab.json"
        vocab.save(path)
        loaded = Vocabulary.load(path)
        assert len(loaded) == len(vocab)
        assert loaded.id("beta") == vocab.id("beta")

    def test_load_rejects_corrupt_file(self, tmp_path):
        path = tmp_path / "vocab.json"
        path.write_text('["not", "special", "tokens"]')
        with pytest.raises(ValueError):
            Vocabulary.load(path)

    def test_iteration_and_contains(self):
        vocab = Vocabulary(["x"])
        assert "x" in vocab
        assert "y" not in vocab
        assert "x" in list(vocab)


class TestPretokenize:
    def test_lowercases_and_splits(self):
        assert pretokenize("Hello World") == ["hello", "world"]

    def test_punctuation_separated(self):
        assert pretokenize("a,b") == ["a", ",", "b"]

    def test_decimal_number_kept_whole(self):
        assert pretokenize("20.3 months") == ["20.3", "months"]

    def test_is_number_token(self):
        assert is_number_token("20.3")
        assert is_number_token("-5")
        assert is_number_token(".5")
        assert not is_number_token("a20")
        assert not is_number_token("")


class TestWordPiece:
    def test_train_builds_vocab(self):
        tok = WordPieceTokenizer.train(CORPUS, vocab_size=150)
        assert len(tok.vocab) > len(SPECIAL_TOKENS)

    def test_frequent_words_become_single_tokens(self):
        tok = WordPieceTokenizer.train(CORPUS, vocab_size=300)
        assert tok.tokenize("survival") == ["survival"]
        assert tok.tokenize("treatment") == ["treatment"]

    def test_numbers_become_val(self):
        tok = WordPieceTokenizer.train(CORPUS, vocab_size=100)
        pieces = tok.tokenize("survival 20.3 months")
        assert VAL in pieces

    def test_numbers_kept_when_disabled(self):
        tok = WordPieceTokenizer.train(CORPUS, vocab_size=100)
        pieces = tok.tokenize("20.3", numbers_to_val=False)
        assert VAL not in pieces

    def test_unseen_word_decomposes_to_subwords(self):
        tok = WordPieceTokenizer.train(CORPUS, vocab_size=300)
        pieces = tok.tokenize("survivalrate")
        assert len(pieces) >= 1
        assert UNK not in pieces  # characters cover any a-z word
        rebuilt = pieces[0] + "".join(p[2:] for p in pieces[1:])
        assert rebuilt == "survivalrate"

    def test_unknown_characters_give_unk(self):
        tok = WordPieceTokenizer.train(CORPUS, vocab_size=100)
        pieces = tok.tokenize("中文")  # each char pretokenizes separately
        assert pieces and all(p == UNK for p in pieces)

    def test_very_long_word_gives_unk(self):
        tok = WordPieceTokenizer.train(CORPUS, vocab_size=100)
        assert tok.tokenize("x" * 50) == [UNK]

    def test_encode_decode_roundtrip_known_words(self):
        tok = WordPieceTokenizer.train(CORPUS, vocab_size=300)
        ids = tok.encode("treatment survival")
        assert tok.decode(ids) == "treatment survival"

    def test_continuation_pieces_have_prefix(self):
        tok = WordPieceTokenizer.train(CORPUS, vocab_size=80)
        pieces = tok.tokenize("zzzq")
        assert pieces[0][0] != "#"
        assert all(p.startswith("##") for p in pieces[1:])

    def test_vocab_size_bound_respected(self):
        tok = WordPieceTokenizer.train(CORPUS, vocab_size=60)
        # Specials + learned pieces; learning stops at the bound.
        assert len(tok.vocab) <= 60 + len(SPECIAL_TOKENS) + 30

    def test_deterministic(self):
        a = WordPieceTokenizer.train(CORPUS, vocab_size=120)
        b = WordPieceTokenizer.train(CORPUS, vocab_size=120)
        assert list(a.vocab) == list(b.vocab)
