"""Unit lexicon and 14-type inference tests."""

import pytest

from repro.text import (
    CELL_FEATURE_ORDER,
    NUM_CELL_FEATURES,
    NUM_TYPES,
    TYPE_NAMES,
    TYPE_TO_ID,
    TypeInference,
    UNIT_CATEGORIES,
    canonical_units,
    detect_trailing_unit,
    feature_bits,
    is_known_unit,
    unit_category,
)


class TestUnits:
    def test_seven_categories_plus_nested(self):
        assert len(UNIT_CATEGORIES) == 7
        assert NUM_CELL_FEATURES == 8
        assert CELL_FEATURE_ORDER == UNIT_CATEGORIES + ("nested",)

    def test_paper_feature_order(self):
        assert CELL_FEATURE_ORDER == (
            "stats", "length", "weight", "capacity", "time", "temperature",
            "pressure", "nested",
        )

    @pytest.mark.parametrize("unit,category", [
        ("%", "stats"), ("percent", "stats"), ("mean", "stats"),
        ("cm", "length"), ("miles", "length"),
        ("mg", "weight"), ("kg", "weight"),
        ("ml", "capacity"), ("liters", "capacity"),
        ("months", "time"), ("days", "time"), ("years", "time"),
        ("celsius", "temperature"),
        ("mmhg", "pressure"), ("psi", "pressure"),
    ])
    def test_unit_category(self, unit, category):
        assert unit_category(unit) == category

    def test_unknown_unit(self):
        assert unit_category("flibbers") is None
        assert unit_category(None) is None
        assert unit_category("") is None

    def test_case_insensitive(self):
        assert unit_category("MG") == "weight"

    def test_canonical_units(self):
        assert "months" in canonical_units("time")
        with pytest.raises(ValueError):
            canonical_units("nonsense")

    def test_detect_trailing_unit(self):
        assert detect_trailing_unit("20.3 months") == ("months", "time")
        assert detect_trailing_unit("45 %") == ("%", "stats")
        assert detect_trailing_unit("hello") == (None, None)
        assert detect_trailing_unit("20.3 zorks") == (None, None)

    def test_is_known_unit_standalone_guard(self):
        assert is_known_unit("months")
        assert is_known_unit("p")               # ok in numeric context
        assert not is_known_unit("p", standalone=True)

    def test_feature_bits_layout(self):
        bits = feature_bits("time", nested=False)
        assert bits == [0, 0, 0, 0, 1, 0, 0, 0]
        bits = feature_bits(None, nested=True)
        assert bits == [0, 0, 0, 0, 0, 0, 0, 1]
        bits = feature_bits("stats", nested=True)
        assert bits == [1, 0, 0, 0, 0, 0, 0, 1]


class TestTypeInference:
    def setup_method(self):
        self.ti = TypeInference()

    def test_exactly_fourteen_types(self):
        assert NUM_TYPES == 14
        assert len(TYPE_NAMES) == 14
        assert TYPE_TO_ID["text"] == 0

    @pytest.mark.parametrize("text,expected", [
        ("42", "number"), ("3.14", "number"), ("20.3 months", "number"),
        ("20-30", "range"), ("20 to 30", "range"),
        ("12.3 ± 4.5", "gaussian"), ("12.3 +/- 4.5", "gaussian"),
        ("45%", "percent"), ("45 percent", "percent"),
        ("2021", "date"), ("2021-03-15", "date"), ("Jan 5, 2021", "date"),
        ("james smith", "person"),
        ("new york", "place"), ("florida", "place"),
        ("mayo clinic", "organization"),
        ("colon cancer", "disease"), ("fever", "disease"),
        ("ramucirumab", "drug"),
        ("moderna", "vaccine"),
        ("chemotherapy", "treatment"),
        ("overall survival", "measurement"), ("burglary", "measurement"),
        ("random gibberish xyz", "text"),
        ("", "text"),
    ])
    def test_inference(self, text, expected):
        assert self.ti.infer(text) == expected

    def test_ids_match_names(self):
        assert self.ti.infer_id("ramucirumab") == TYPE_TO_ID["drug"]
        assert 0 <= self.ti.infer_id("whatever") < NUM_TYPES

    def test_case_insensitive(self):
        assert self.ti.infer("Ramucirumab") == "drug"
        assert self.ti.infer("NEW YORK") == "place"

    def test_embedded_phrase_matched(self):
        assert self.ti.infer("patients with colon cancer") == "disease"

    def test_extra_gazetteer(self):
        custom = TypeInference(extra_gazetteers={"drug": ("zzz-17",)})
        assert custom.infer("zzz-17") == "drug"

    def test_extra_gazetteer_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            TypeInference(extra_gazetteers={"spell": ("abracadabra",)})

    def test_year_range_not_date(self):
        # A range of years parses as range, not date (shape priority).
        assert self.ti.infer("2001-2005") == "range"
