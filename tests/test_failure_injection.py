"""Failure-injection tests: corrupt inputs, adversarial tables, bad state."""

import numpy as np
import pytest

from repro.core import TabBiNConfig, TabBiNEmbedder
from repro.nn import Linear, Sequential, load_checkpoint, save_checkpoint
from repro.tables import Table, parse_value
from repro.tables.values import TextValue


class TestAdversarialTables:
    """The embedder must survive hostile-but-valid table content."""

    @pytest.fixture(scope="class")
    def embedder(self):
        weird = [
            Table("empty cells", [["a", "b"]],
                  [["", ""], ["x", ""]], topic="weird"),
            Table("unicode", [["col"]],
                  [["naïve café 中文 ☃"], ["±∞µ"]], topic="weird"),
            Table("huge cell", [["col"]],
                  [[" ".join(f"tok{i}" for i in range(500))]], topic="weird"),
            Table("numeric soup", [["n"]],
                  [["1e308"], ["-0.0"], ["999999999999999"]], topic="weird"),
            Table("whitespace", [["  a  "]], [["   "]], topic="weird"),
        ]
        emb, _ = TabBiNEmbedder.build(weird * 2, config=TabBiNConfig.tiny(),
                                      steps=3, vocab_size=300, seed=0)
        return emb, weird

    def test_embeddings_stay_finite(self, embedder):
        emb, weird = embedder
        for table in weird:
            vec = emb.table_embedding(table, variant="tblcomp1")
            assert np.isfinite(vec).all(), table.caption
            for j in range(table.n_cols):
                assert np.isfinite(emb.column_embedding(table, j)).all()

    def test_empty_string_entity(self, embedder):
        emb, _ = embedder
        vec = emb.entity_embedding("")
        assert vec.shape == (emb.hidden,)
        assert np.isfinite(vec).all()

    def test_huge_cell_respects_token_cap(self, embedder):
        emb, weird = embedder
        seq = emb.serializer.serialize(weird[2], "row")[0]
        assert seq.tokens_of_cell(0).size <= emb.config.max_cell_tokens


class TestValueParsingEdgeCases:
    @pytest.mark.parametrize("text", [
        "-", "--", ".", "..", "+-", "1-", "-1-", "1.2.3", "1e", "e5",
        "± 4", "1 ±", "%", "% 5",
    ])
    def test_malformed_numerics_degrade_to_text(self, text):
        value = parse_value(text)
        # Must not crash; anything unparseable is text.
        assert value.render() is not None

    def test_extreme_magnitudes(self):
        from repro.core.numeric_features import numeric_features

        for x in (1e300, 1e-300, -1e300, 0.0):
            mag, pre, fst, lst = numeric_features(x)
            assert 1 <= mag <= 10 and 1 <= pre <= 10

    def test_whitespace_only(self):
        assert isinstance(parse_value(" \t "), TextValue)


class TestCorruptCheckpoints:
    def test_truncated_file_raises_cleanly(self, tmp_path):
        model = Sequential(Linear(3, 3))
        path = tmp_path / "model.npz"
        save_checkpoint(model, path)
        path.write_bytes(path.read_bytes()[:20])
        with pytest.raises(Exception):
            load_checkpoint(Sequential(Linear(3, 3)), path)

    def test_garbage_file_raises_cleanly(self, tmp_path):
        path = tmp_path / "model.npz"
        path.write_bytes(b"not a zip archive at all")
        with pytest.raises(Exception):
            load_checkpoint(Sequential(Linear(3, 3)), path)

    def test_embedder_load_missing_segment(self, tmp_path):
        corpus = [Table("t", [["a", "b"]], [["x", "1"], ["y", "2"]],
                        topic="t")]
        emb, _ = TabBiNEmbedder.build(corpus, config=TabBiNConfig.tiny(),
                                      steps=1, vocab_size=200, seed=0)
        emb.save(tmp_path / "ckpt")
        (tmp_path / "ckpt" / "vmd.npz").unlink()
        with pytest.raises(FileNotFoundError):
            TabBiNEmbedder.load(tmp_path / "ckpt", TabBiNConfig.tiny())


class TestNaNRobustness:
    def test_layernorm_constant_input(self):
        """Zero-variance rows must not divide by zero."""
        from repro.nn import LayerNorm, Tensor

        norm = LayerNorm(8)
        out = norm(Tensor(np.full((2, 8), 3.0)))
        assert np.isfinite(out.data).all()

    def test_softmax_all_masked_but_self(self):
        from repro.nn import MultiHeadSelfAttention, Tensor

        attn = MultiHeadSelfAttention(8, 2, rng=np.random.default_rng(0))
        mask = np.eye(4, dtype=np.uint8)
        out = attn(Tensor(np.random.default_rng(0).standard_normal((1, 4, 8))),
                   mask)
        assert np.isfinite(out.data).all()

    def test_cosine_with_nan_free_zero_vectors(self):
        from repro.retrieval import cosine_matrix

        m = cosine_matrix(np.zeros((2, 4)), np.ones((3, 4)))
        assert np.isfinite(m).all()
