"""Failure-injection tests: corrupt inputs, adversarial tables, bad state."""

import numpy as np
import pytest

from repro.core import TabBiNConfig, TabBiNEmbedder
from repro.nn import Linear, Sequential, load_checkpoint, save_checkpoint
from repro.tables import Table, parse_value
from repro.tables.values import TextValue


class TestAdversarialTables:
    """The embedder must survive hostile-but-valid table content."""

    @pytest.fixture(scope="class")
    def embedder(self):
        weird = [
            Table("empty cells", [["a", "b"]],
                  [["", ""], ["x", ""]], topic="weird"),
            Table("unicode", [["col"]],
                  [["naïve café 中文 ☃"], ["±∞µ"]], topic="weird"),
            Table("huge cell", [["col"]],
                  [[" ".join(f"tok{i}" for i in range(500))]], topic="weird"),
            Table("numeric soup", [["n"]],
                  [["1e308"], ["-0.0"], ["999999999999999"]], topic="weird"),
            Table("whitespace", [["  a  "]], [["   "]], topic="weird"),
        ]
        emb, _ = TabBiNEmbedder.build(weird * 2, config=TabBiNConfig.tiny(),
                                      steps=3, vocab_size=300, seed=0)
        return emb, weird

    def test_embeddings_stay_finite(self, embedder):
        emb, weird = embedder
        for table in weird:
            vec = emb.table_embedding(table, variant="tblcomp1")
            assert np.isfinite(vec).all(), table.caption
            for j in range(table.n_cols):
                assert np.isfinite(emb.column_embedding(table, j)).all()

    def test_empty_string_entity(self, embedder):
        emb, _ = embedder
        vec = emb.entity_embedding("")
        assert vec.shape == (emb.hidden,)
        assert np.isfinite(vec).all()

    def test_huge_cell_respects_token_cap(self, embedder):
        emb, weird = embedder
        seq = emb.serializer.serialize(weird[2], "row")[0]
        assert seq.tokens_of_cell(0).size <= emb.config.max_cell_tokens


class TestValueParsingEdgeCases:
    @pytest.mark.parametrize("text", [
        "-", "--", ".", "..", "+-", "1-", "-1-", "1.2.3", "1e", "e5",
        "± 4", "1 ±", "%", "% 5",
    ])
    def test_malformed_numerics_degrade_to_text(self, text):
        value = parse_value(text)
        # Must not crash; anything unparseable is text.
        assert value.render() is not None

    def test_extreme_magnitudes(self):
        from repro.core.numeric_features import numeric_features

        for x in (1e300, 1e-300, -1e300, 0.0):
            mag, pre, fst, lst = numeric_features(x)
            assert 1 <= mag <= 10 and 1 <= pre <= 10

    def test_whitespace_only(self):
        assert isinstance(parse_value(" \t "), TextValue)


class TestCorruptCheckpoints:
    def test_truncated_file_raises_cleanly(self, tmp_path):
        model = Sequential(Linear(3, 3))
        path = tmp_path / "model.npz"
        save_checkpoint(model, path)
        path.write_bytes(path.read_bytes()[:20])
        with pytest.raises(Exception):
            load_checkpoint(Sequential(Linear(3, 3)), path)

    def test_garbage_file_raises_cleanly(self, tmp_path):
        path = tmp_path / "model.npz"
        path.write_bytes(b"not a zip archive at all")
        with pytest.raises(Exception):
            load_checkpoint(Sequential(Linear(3, 3)), path)

    def test_embedder_load_missing_segment(self, tmp_path):
        corpus = [Table("t", [["a", "b"]], [["x", "1"], ["y", "2"]],
                        topic="t")]
        emb, _ = TabBiNEmbedder.build(corpus, config=TabBiNConfig.tiny(),
                                      steps=1, vocab_size=200, seed=0)
        emb.save(tmp_path / "ckpt")
        (tmp_path / "ckpt" / "vmd.npz").unlink()
        with pytest.raises(FileNotFoundError):
            TabBiNEmbedder.load(tmp_path / "ckpt", TabBiNConfig.tiny())


class TestShardedLayoutCorruption:
    """A broken sharded layout must surface one clear error at open
    time — never a worker hang or a half-merged query result."""

    @pytest.fixture()
    def layout(self, tmp_path):
        from repro.index import IndexSpec, ShardedIndex

        rng = np.random.default_rng(0)
        sharded = ShardedIndex.create(IndexSpec(kind="vector", dim=8), 3)
        sharded.add_batch([f"key{i}" for i in range(12)],
                          rng.standard_normal((12, 8)))
        return sharded.save(tmp_path / "idx")

    def test_missing_shard_file(self, layout):
        """ValueError, not FileNotFoundError: the layout exists but
        disagrees with its manifest (the CLI maps FileNotFoundError to
        a 'run index build first' hint, wrong for a broken layout)."""
        from repro.index import open_index

        (layout / "shard-0001.npz").unlink()
        with pytest.raises(ValueError) as error:
            open_index(layout)
        assert "shard-0001.npz" in str(error.value)
        assert "MANIFEST" in str(error.value)

    def test_truncated_shard_file(self, layout):
        from repro.index import open_index

        shard = layout / "shard-0002.npz"
        shard.write_bytes(shard.read_bytes()[:25])
        with pytest.raises(ValueError, match="corrupt or truncated"):
            open_index(layout)

    def test_garbage_shard_file(self, layout):
        from repro.index import open_index

        (layout / "shard-0000.npz").write_bytes(b"not a zip archive")
        with pytest.raises(ValueError, match="corrupt or truncated"):
            open_index(layout)

    def test_manifest_shard_count_mismatch(self, layout):
        import json

        from repro.index import open_index

        manifest_path = layout / "MANIFEST.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["n_shards"] = 5
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="n_shards=5.*lists 3"):
            open_index(layout)

    def test_manifest_entry_count_mismatch(self, layout):
        """A shard swapped in from another build (entry counts disagree
        with the manifest) is an inconsistent layout, not data."""
        import json

        from repro.index import open_index

        manifest_path = layout / "MANIFEST.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["shards"][1]["entries"] += 2
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="inconsistent"):
            open_index(layout)

    @pytest.mark.parametrize("drop", ["shards", "spec"])
    def test_manifest_missing_required_key(self, layout, drop):
        """A JSON-parseable manifest without its required structure is
        one clear ValueError, not a KeyError traceback."""
        import json

        from repro.index import open_index

        manifest_path = layout / "MANIFEST.json"
        manifest = json.loads(manifest_path.read_text())
        del manifest[drop]
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="required 'spec'/'shards'"):
            open_index(layout)

    def test_manifest_spec_missing_field(self, layout):
        import json

        from repro.index import open_index

        manifest_path = layout / "MANIFEST.json"
        manifest = json.loads(manifest_path.read_text())
        del manifest["spec"]["dim"]
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="spec lacks required field"):
            open_index(layout)

    def test_garbage_manifest_is_a_value_error(self, layout):
        """json.JSONDecodeError subclasses ValueError, so the CLI's
        stderr + exit-2 contract covers an unparseable manifest too."""
        from repro.index import open_index

        (layout / "MANIFEST.json").write_text("{not json")
        with pytest.raises(ValueError):
            open_index(layout)

    def test_intact_layout_still_opens(self, layout):
        """The integrity checks must not reject a healthy layout."""
        from repro.index import open_index

        index = open_index(layout)
        assert len(index) == 12
        assert len(index.query_vector(np.zeros(8), k=3)) == 3


class TestNaNRobustness:
    def test_layernorm_constant_input(self):
        """Zero-variance rows must not divide by zero."""
        from repro.nn import LayerNorm, Tensor

        norm = LayerNorm(8)
        out = norm(Tensor(np.full((2, 8), 3.0)))
        assert np.isfinite(out.data).all()

    def test_softmax_all_masked_but_self(self):
        from repro.nn import MultiHeadSelfAttention, Tensor

        attn = MultiHeadSelfAttention(8, 2, rng=np.random.default_rng(0))
        mask = np.eye(4, dtype=np.uint8)
        out = attn(Tensor(np.random.default_rng(0).standard_normal((1, 4, 8))),
                   mask)
        assert np.isfinite(out.data).all()

    def test_cosine_with_nan_free_zero_vectors(self):
        from repro.retrieval import cosine_matrix

        m = cosine_matrix(np.zeros((2, 4)), np.ones((3, 4)))
        assert np.isfinite(m).all()
