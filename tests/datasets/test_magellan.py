"""Entity-matching pair dataset tests."""

import pytest

from repro.datasets import (
    entity_pairs_from_corpus,
    generate_em_dataset,
    load_dataset,
    serialize_record,
)


class TestEMDatasets:
    def test_balanced_labels(self):
        pairs = generate_em_dataset("amazon-google", n_pairs=50, seed=0)
        assert len(pairs) == 100
        assert sum(p.label for p in pairs) == 50

    def test_both_benchmarks_available(self):
        for name in ("amazon-google", "abt-buy"):
            pairs = generate_em_dataset(name, n_pairs=10, seed=0)
            assert len(pairs) == 20

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            generate_em_dataset("walmart-target")

    def test_serialization_format(self):
        text = serialize_record("sony", "bravia", "televisions", 499.99)
        assert text.startswith("COL brand VAL sony")
        assert "COL price VAL 499.99" in text

    def test_positives_share_tokens(self):
        """A perturbed duplicate keeps most of the record's vocabulary."""
        pairs = generate_em_dataset("abt-buy", n_pairs=30, seed=1)
        overlaps = []
        for p in pairs:
            a = set(p.left.split())
            b = set(p.right.split())
            overlap = len(a & b) / len(a | b)
            overlaps.append((p.label, overlap))
        pos = [o for l, o in overlaps if l == 1]
        neg = [o for l, o in overlaps if l == 0]
        assert sum(pos) / len(pos) > sum(neg) / len(neg)

    def test_deterministic(self):
        a = generate_em_dataset("amazon-google", n_pairs=20, seed=3)
        b = generate_em_dataset("amazon-google", n_pairs=20, seed=3)
        assert [(p.left, p.label) for p in a] == [(p.left, p.label) for p in b]


class TestCorpusPairs:
    def test_pairs_from_generated_corpus(self):
        corpus = load_dataset("webtables", n_tables=20, seed=4)
        pairs = entity_pairs_from_corpus(corpus, n_pairs=30, seed=0)
        assert len(pairs) == 60
        assert sum(p.label for p in pairs) == 30

    def test_positive_pairs_share_type(self):
        corpus = load_dataset("cancerkg", n_tables=20, seed=4)
        pairs = entity_pairs_from_corpus(corpus, n_pairs=20, seed=0)
        for p in pairs:
            type_a = p.left.split("COL type VAL ")[1]
            type_b = p.right.split("COL type VAL ")[1]
            assert (type_a == type_b) == bool(p.label)
