"""Synthetic corpus generator tests."""

import numpy as np
import pytest

from repro.datasets import (
    CANCERKG,
    COVIDKG,
    PROFILES,
    CorpusGenerator,
    WEBTABLES,
    corpus_stats,
    load_dataset,
)
from repro.datasets.schemas import DOMAIN_TOPICS, Concept
from repro.tables.values import GaussianValue, NumberValue, RangeValue, parse_value


class TestConcept:
    def setup_method(self):
        self.rng = np.random.default_rng(0)

    def test_entity_concept_stamps_type(self):
        c = Concept("drug", "entity", "drug", ("ramucirumab", "cetuximab"))
        text, entity = c.generate(self.rng)
        assert text in ("ramucirumab", "cetuximab")
        assert entity == "drug"

    def test_number_concept(self):
        c = Concept("dose", "number", units=("mg",), low=5, high=10)
        text, entity = c.generate(self.rng)
        assert entity is None
        assert isinstance(parse_value(text), NumberValue)
        assert "mg" in text

    def test_range_concept(self):
        c = Concept("age", "range", low=20, high=40, decimals=0)
        text, _ = c.generate(self.rng)
        assert isinstance(parse_value(text), RangeValue)

    def test_gaussian_concept(self):
        c = Concept("bmi", "gaussian", low=18, high=30)
        text, _ = c.generate(self.rng)
        assert isinstance(parse_value(text), GaussianValue)

    def test_percent_concept(self):
        c = Concept("rate", "percent", low=1, high=99)
        text, _ = c.generate(self.rng)
        assert "%" in text

    def test_year_concept(self):
        c = Concept("founded", "year")
        text, _ = c.generate(self.rng)
        assert 1990 <= int(text) <= 2023

    def test_synonym_headers(self):
        c = Concept("population", synonyms=("inhabitants",))
        labels = {c.header_label(self.rng, noise=1.0) for _ in range(5)}
        assert labels == {"inhabitants"}
        assert c.header_label(self.rng, noise=0.0) == "population"

    def test_is_numeric(self):
        assert Concept("x", "number").is_numeric
        assert Concept("x", "range").is_numeric
        assert not Concept("x", "entity").is_numeric


class TestGenerator:
    def test_deterministic_per_seed(self):
        a = CorpusGenerator(WEBTABLES, seed=7).generate()
        b = CorpusGenerator(WEBTABLES, seed=7).generate()
        assert len(a) == len(b)
        assert all(x.caption == y.caption for x, y in zip(a, b))
        assert all(x.data[0][0].text == y.data[0][0].text for x, y in zip(a, b))

    def test_different_seeds_differ(self):
        a = CorpusGenerator(WEBTABLES, seed=1).generate()
        b = CorpusGenerator(WEBTABLES, seed=2).generate()
        assert any(x.caption != y.caption for x, y in zip(a, b))

    def test_gold_labels_present(self):
        tables = CorpusGenerator(CANCERKG, seed=0).generate()
        for t in tables:
            assert t.topic in {s.topic for s in CANCERKG.topics}
            for j in range(t.n_cols):
                assert t.column_concept(j)

    def test_row_bounds_respected(self):
        tables = CorpusGenerator(WEBTABLES, seed=0).generate()
        lo, hi = WEBTABLES.rows
        assert all(lo <= t.n_rows <= hi for t in tables)

    def test_scaled_profile(self):
        tables = load_dataset("cius", n_tables=10, seed=0)
        assert len(tables) == 10


class TestProfiles:
    def test_all_five_datasets_load(self):
        for name in PROFILES:
            tables = load_dataset(name, n_tables=12, seed=0)
            assert len(tables) == 12
            assert all(t.source == name for t in tables)

    def test_unknown_dataset_rejected(self):
        with pytest.raises(KeyError):
            load_dataset("imaginary")

    def test_covidkg_structural_profile(self):
        """CovidKG-like: mostly non-relational, some nesting, VMD."""
        tables = load_dataset("covidkg", n_tables=40, seed=11)
        stats = corpus_stats(tables)
        assert stats.frac_non_relational > 0.4   # paper: over 40%
        assert stats.n_with_vmd > 0
        assert stats.n_hierarchical > 0

    def test_webtables_mostly_relational(self):
        tables = load_dataset("webtables", n_tables=40, seed=11)
        stats = corpus_stats(tables)
        assert stats.frac_non_relational < 0.5

    def test_saus_cius_larger_tables(self):
        saus = corpus_stats(load_dataset("saus", n_tables=20, seed=0))
        web = corpus_stats(load_dataset("webtables", n_tables=20, seed=0))
        assert saus.avg_rows > web.avg_rows

    def test_value_shapes_present_in_cancerkg(self):
        tables = load_dataset("cancerkg", n_tables=30, seed=2)
        cells = [c for t in tables for c in t.all_cells()]
        assert any(c.is_range for c in cells)
        assert any(c.is_gaussian for c in cells)
        assert any(c.unit_category == "time" for c in cells)

    def test_entity_catalog_diversity(self):
        tables = load_dataset("cancerkg", n_tables=30, seed=2)
        stats = corpus_stats(tables)
        assert len(stats.entity_counts) >= 3

    def test_stats_aggregation(self):
        tables = load_dataset("webtables", n_tables=10, seed=0)
        stats = corpus_stats(tables)
        assert stats.n_tables == 10
        assert stats.avg_cols == pytest.approx(stats.n_columns / 10)

    def test_domain_topics_cover_paper_list(self):
        topics = {s.topic for s in DOMAIN_TOPICS["webtables"]}
        for expected in ("magazines", "cities", "universities",
                         "soccer clubs", "baseball players", "regions",
                         "music genres"):
            assert expected in topics
