"""Task runner tests using oracle and adversarial embedders."""

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.eval import (
    ResultsTable,
    collect_columns,
    collect_entities,
    column_clustering,
    entity_clustering,
    table_clustering,
)

CORPUS = load_dataset("webtables", n_tables=21, seed=5)


def oracle_column_embedder():
    """Embeds a column as a one-hot of its gold concept: a perfect model."""
    concepts = sorted({r.concept for r in collect_columns(CORPUS)})
    index = {c: i for i, c in enumerate(concepts)}

    def embed(table, j):
        v = np.zeros(len(index))
        v[index[table.column_concept(j)]] = 1.0
        return v

    return embed


def random_embedder(dim=16, seed=0):
    rng = np.random.default_rng(seed)
    cache = {}

    def embed(*key_parts):
        key = tuple(id(p) if not isinstance(p, (int, str)) else p
                    for p in key_parts)
        if key not in cache:
            cache[key] = rng.standard_normal(dim)
        return cache[key]

    return embed


class TestColumnClustering:
    def test_oracle_scores_perfect(self):
        result = column_clustering(CORPUS, oracle_column_embedder(),
                                   max_queries=25)
        assert result.map_at_k == pytest.approx(1.0)
        assert result.mrr_at_k == pytest.approx(1.0)

    def test_random_embedder_scores_low(self):
        embed = random_embedder()
        result = column_clustering(CORPUS, lambda t, j: embed(t, j),
                                   max_queries=25)
        assert result.map_at_k < 0.6

    def test_lsh_blocking_keeps_oracle_strong(self):
        result = column_clustering(CORPUS, oracle_column_embedder(),
                                   max_queries=15, use_lsh=True)
        assert result.map_at_k > 0.9

    def test_predicate_filters_columns(self):
        numeric_cols = collect_columns(
            CORPUS, predicate=lambda t, j: all(
                c.is_numeric for c in t.column(j) if c.text
            ),
        )
        assert numeric_cols
        assert len(numeric_cols) < len(collect_columns(CORPUS))

    def test_requires_two_columns(self):
        with pytest.raises(ValueError):
            column_clustering(CORPUS, oracle_column_embedder(), columns=[])

    def test_result_format(self):
        result = column_clustering(CORPUS, oracle_column_embedder(),
                                   max_queries=5)
        text = str(result)
        assert "/" in text and result.n_queries == 5


class TestTableClustering:
    def test_oracle_topic_embedder_perfect(self):
        topics = sorted({t.topic for t in CORPUS})
        index = {t: i for i, t in enumerate(topics)}

        def embed(table):
            v = np.zeros(len(index))
            v[index[table.topic]] = 1.0
            return v

        result = table_clustering(CORPUS, embed)
        assert result.map_at_k == pytest.approx(1.0)

    def test_random_low(self):
        embed = random_embedder()
        result = table_clustering(CORPUS, lambda t: embed(t))
        assert result.map_at_k < 0.75

    def test_requires_topics(self):
        from repro.tables import Table

        untopiced = [Table("t", [["a"]], [["1"]]) for _ in range(3)]
        with pytest.raises(ValueError):
            table_clustering(untopiced, lambda t: np.ones(3))


class TestEntityClustering:
    def test_catalog_collection(self):
        entities = collect_entities(CORPUS)
        assert entities
        assert all(e.entity_type for e in entities)
        types = {e.entity_type for e in entities}
        assert len(types) >= 2

    def test_max_per_type_respected(self):
        entities = collect_entities(CORPUS, max_per_type=3)
        from collections import Counter

        counts = Counter(e.entity_type for e in entities)
        assert max(counts.values()) <= 3

    def test_oracle_entity_embedder_perfect(self):
        entities = collect_entities(CORPUS, max_per_type=8)
        types = sorted({e.entity_type for e in entities})
        index = {t: i for i, t in enumerate(types)}
        lookup = {e.text: e.entity_type for e in entities}

        def embed(text):
            v = np.zeros(len(index))
            v[index[lookup[text]]] = 1.0
            return v

        result = entity_clustering(entities, embed, max_queries=20)
        assert result.map_at_k == pytest.approx(1.0)

    def test_requires_entities(self):
        with pytest.raises(ValueError):
            entity_clustering([], lambda t: np.ones(2))


class TestResultsTable:
    def test_add_and_get(self):
        table = ResultsTable("Demo", columns=["A", "B"])
        table.add("row1", "A", "0.5/0.6")
        assert table.get("row1", "A") == "0.5/0.6"

    def test_unknown_column_rejected(self):
        table = ResultsTable("Demo", columns=["A"])
        with pytest.raises(KeyError):
            table.add("row1", "B", 1)

    def test_markdown_output(self):
        table = ResultsTable("Demo", columns=["A"])
        table.add("r", "A", "x")
        md = table.to_markdown()
        assert "### Demo" in md and "| r | x |" in md

    def test_text_output_and_missing_cells(self):
        table = ResultsTable("Demo", columns=["A", "B"])
        table.add("r", "A", "x")
        text = table.to_text()
        assert "x" in text and "-" in text

    def test_save(self, tmp_path):
        table = ResultsTable("Demo", columns=["A"])
        table.add("r", "A", 1)
        path = table.save(tmp_path / "out.md")
        assert path.read_text().startswith("### Demo")
