"""Metric tests with hand-computed values."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import (
    average_precision_at_k,
    f1_score,
    mean_average_precision,
    mean_reciprocal_rank,
    precision_recall_f1,
    reciprocal_rank_at_k,
)


class TestAveragePrecision:
    def test_perfect_ranking(self):
        assert average_precision_at_k([1, 1, 1], k=20) == pytest.approx(1.0)

    def test_hand_computed(self):
        # Hits at ranks 1 and 3: (1/1 + 2/3) / 2.
        ap = average_precision_at_k([1, 0, 1], k=20)
        assert ap == pytest.approx((1.0 + 2 / 3) / 2)

    def test_empty_and_all_miss(self):
        assert average_precision_at_k([], k=20) == 0.0
        assert average_precision_at_k([0, 0, 0], k=20) == 0.0

    def test_window_respected(self):
        # The hit at rank 3 is outside k=2.
        assert average_precision_at_k([0, 0, 1], k=2) == 0.0

    def test_normalization_by_total_relevant(self):
        # One hit in the window, but 2 relevant exist overall.
        ap = average_precision_at_k([1, 0], k=20, n_relevant=2)
        assert ap == pytest.approx(0.5)

    def test_normalization_capped_by_k(self):
        # 100 relevant overall but k=2: perfect window gives 1.0.
        ap = average_precision_at_k([1, 1], k=2, n_relevant=100)
        assert ap == pytest.approx(1.0)


class TestReciprocalRank:
    def test_first_position(self):
        assert reciprocal_rank_at_k([1, 0, 0]) == 1.0

    def test_third_position(self):
        assert reciprocal_rank_at_k([0, 0, 1]) == pytest.approx(1 / 3)

    def test_no_hit(self):
        assert reciprocal_rank_at_k([0, 0, 0]) == 0.0

    def test_window(self):
        assert reciprocal_rank_at_k([0, 0, 1], k=2) == 0.0


class TestAggregates:
    def test_map(self):
        lists = [[1, 1], [0, 1]]
        expected = (1.0 + 0.5) / 2
        assert mean_average_precision(lists, k=20) == pytest.approx(expected)

    def test_mrr(self):
        lists = [[1, 0], [0, 1]]
        assert mean_reciprocal_rank(lists, k=20) == pytest.approx(0.75)

    def test_empty(self):
        assert mean_average_precision([], 20) == 0.0
        assert mean_reciprocal_rank([], 20) == 0.0

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.lists(st.booleans(), min_size=1, max_size=30),
                    min_size=1, max_size=10))
    def test_metrics_bounded(self, lists):
        assert 0.0 <= mean_average_precision(lists, 20) <= 1.0
        assert 0.0 <= mean_reciprocal_rank(lists, 20) <= 1.0

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.booleans(), min_size=1, max_size=20))
    def test_first_hit_gives_perfect_rr(self, rel):
        """If the top item is relevant, RR is 1 and bounds AP."""
        rr = reciprocal_rank_at_k(rel, 20)
        ap = average_precision_at_k(rel, 20)
        if rel[0]:
            assert rr == 1.0
            assert ap <= rr
        elif not any(rel[:20]):
            assert rr == 0.0 and ap == 0.0


class TestF1:
    def test_perfect(self):
        assert f1_score([1, 0, 1], [1, 0, 1]) == 1.0

    def test_hand_computed(self):
        # TP=1, FP=1, FN=1 -> P=R=0.5 -> F1=0.5.
        p, r, f1 = precision_recall_f1([1, 1, 0], [1, 0, 1])
        assert (p, r, f1) == (0.5, 0.5, 0.5)

    def test_degenerate(self):
        assert f1_score([0, 0], [0, 0]) == 0.0
        assert f1_score([1, 1], [0, 0]) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            f1_score([1], [1, 0])
