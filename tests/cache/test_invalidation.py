"""Invalidation layer: a lifecycle op must make every cached entry
unreachable — no stale result, ever.

Three levels:

- engine: hypothesis interleaves ``remove``/``compact``/``merge`` with
  cached query traffic and requires each answer to equal a fresh
  ``query_many`` against the index's *current* state;
- server: a lifecycle op between requests is observable as a
  generation bump in ``/stats`` and the next served answer reflects it;
- catalog: LRU eviction drops the cache together with the dispatcher
  (a reopened slot starts cold), while the hit/miss counters survive on
  the slot's stats.
"""

import json
import urllib.request

import numpy as np
import pytest
from cacheutil import build_index, make_corpus, ranked_many, save_layout
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cache import CachedQueryEngine
from repro.catalog import Catalog, CatalogEntry, CatalogHandle
from repro.index import IndexSpec, ShardedIndex, VectorIndex, open_index
from repro.serve import ServerThread

DIM = 12
SHARD_COUNTS = (1, 2, 5)


def http_get(port: int, path: str) -> dict:
    with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}") as reply:
        return json.loads(reply.read())


def post_query(port: int, payload: dict) -> dict:
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/query",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request) as reply:
        return json.loads(reply.read())


class TestEngineLifecycle:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(n_shards=st.sampled_from(SHARD_COUNTS),
           seed=st.integers(0, 2**16),
           ops=st.lists(st.sampled_from(["remove", "compact", "merge",
                                         "query", "query", "query"]),
                        min_size=4, max_size=12))
    def test_interleaved_lifecycle_never_serves_stale(self, n_shards, seed,
                                                      ops):
        rng = np.random.default_rng(seed)
        keys, vectors = make_corpus(n=36, dim=DIM, seed=seed % 89)
        index = build_index(keys, vectors, n_shards, seed=0)
        engine = CachedQueryEngine(index, max_entries=32)
        live = list(keys)
        extra_keys, extra_vectors = make_corpus(n=6, dim=DIM,
                                                seed=(seed % 89) + 1)
        extra_keys = [f"x{key}" for key in extra_keys]
        merged = False
        pool = np.concatenate([vectors[:4], rng.standard_normal((2, DIM))])
        for op in ops:
            if op == "remove" and live:
                victim = live.pop(int(rng.integers(0, len(live))))
                index.remove(victim)
            elif op == "compact":
                index.compact()
            elif op == "merge" and not merged:
                other = VectorIndex(dim=DIM, seed=0)
                other.add_batch(extra_keys, extra_vectors)
                index.merge(other)
                live.extend(extra_keys)
                merged = True
            # Query traffic between (and after) every mutation: the
            # cache may hit or miss, but the answer must match the
            # index's current state exactly.
            batch = pool[rng.integers(0, len(pool), size=2)]
            got = engine.query_many(batch, k=4)
            want = index.query_many(batch, k=4)
            assert ranked_many(got) == ranked_many(want)

    def test_removed_key_disappears_from_cached_answers(self):
        keys, vectors = make_corpus(n=30, dim=DIM, seed=5)
        index = build_index(keys, vectors, 1, seed=0)
        engine = CachedQueryEngine(index, max_entries=16)
        query = vectors[0][None, :]
        top = engine.query_many(query, k=3)[0][0].key
        generation_before = engine.generation
        index.remove(top)
        after = engine.query_many(query, k=3)
        assert top not in [hit.key for hit in after[0]]
        assert engine.generation > generation_before
        assert ranked_many(after) == ranked_many(index.query_many(query, k=3))

    def test_generation_change_clears_both_tiers(self):
        keys, vectors = make_corpus(n=30, dim=DIM, seed=6)
        index = build_index(keys, vectors, 1, seed=0)
        engine = CachedQueryEngine(index, max_entries=16)
        engine.query_many(vectors[::3][:3], k=3)  # 3 distinct vectors
        assert engine.sizes()["exact_entries"] == 3
        index.compact()  # no tombstones: may or may not bump
        index.remove(keys[0])  # definitely bumps
        engine.query_many(vectors[9:10], k=3)
        sizes = engine.sizes()
        # Only the post-bump query's entries remain.
        assert sizes["exact_entries"] == 1
        assert sizes["semantic_entries"] == 1

    def test_store_against_moved_generation_is_dropped(self):
        """The submit-to-tick race: a plan looked up before a lifecycle
        op must not store its (stale) result after it."""
        keys, vectors = make_corpus(n=30, dim=DIM, seed=7)
        index = build_index(keys, vectors, 1, seed=0)
        engine = CachedQueryEngine(index, max_entries=16)
        vector = vectors[0]
        hits, plan = engine.lookup(vector, 3, None)
        assert hits is None
        results, shortlists = engine.run_misses(vector[None, :], 3, [None])
        index.remove(keys[0])  # generation moves between run and store
        engine.store(plan, results[0], shortlists[0])
        assert engine.sizes()["exact_entries"] == 0
        assert engine.sizes()["semantic_entries"] == 0

    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_sharded_generation_survives_rebalance(self, n_shards):
        """Rebalance resets per-shard counters; the layout generation
        must stay monotonic anyway, or an old cache key could be
        re-minted."""
        keys, vectors = make_corpus(n=30, dim=DIM, seed=8)
        index = build_index(keys, vectors, max(n_shards, 2), seed=0)
        if not isinstance(index, ShardedIndex):
            pytest.skip("single-file layout has no rebalance")
        before = index.generation
        index.rebalance()
        assert index.generation > before


class TestServerLifecycle:
    def test_generation_bump_visible_in_stats_and_answers(self):
        """Mutate the served (pinned, in-memory) index between
        requests: /stats shows the bump and the cached entry is gone."""
        keys, vectors = make_corpus(n=40, dim=DIM, seed=9)
        index = build_index(keys, vectors, 1, seed=0)
        with ServerThread(index, max_wait_ms=1.0) as thread:
            port = thread.server.port
            query = [float(x) for x in vectors[0]]
            first = post_query(port, {"vector": query, "k": 3})
            top = first["hits"][0]["key"]
            stats = http_get(port, "/stats")["indexes"]["default"]
            generation_before = stats["generation"]
            index.remove(top)
            second = post_query(port, {"vector": query, "k": 3})
            assert top not in [hit["key"] for hit in second["hits"]]
            stats = http_get(port, "/stats")["indexes"]["default"]
            assert stats["generation"] > generation_before
            offline = index.query_many(np.asarray([query]), k=3)
            assert [hit["key"] for hit in second["hits"]] \
                == [hit.key for hit in offline[0]]

    def test_exclude_only_difference_not_shared_over_the_wire(self):
        """Satellite regression, wire level: two requests differing
        only in ``exclude`` must not share a cache entry."""
        keys, vectors = make_corpus(n=40, dim=DIM, seed=10)
        index = build_index(keys, vectors, 1, seed=0)
        with ServerThread(index, max_wait_ms=1.0) as thread:
            port = thread.server.port
            query = [float(x) for x in vectors[0]]
            plain = post_query(port, {"vector": query, "k": 3})
            top = plain["hits"][0]["key"]
            excluded = post_query(port, {"vector": query, "k": 3,
                                         "exclude": top})
            assert top not in [hit["key"] for hit in excluded["hits"]]
            # Replay both shapes: each must hit its own entry.
            assert post_query(port, {"vector": query, "k": 3}) == plain
            assert post_query(port, {"vector": query, "k": 3,
                                     "exclude": top}) == excluded
            cache = http_get(port, "/stats")["indexes"]["default"]["cache"]
            assert cache["exact_hits"] == 2
            # The exclude variant shares band keys with the plain
            # request, so it rides the semantic tier (rescored without
            # the excluded key) rather than missing outright — but it
            # must never share the *exact* entry.
            assert cache["misses"] == 1
            assert cache["semantic_hits"] == 1


class TestCatalogEviction:
    def make_handle(self, tmp_path, max_open=1):
        paths = {}
        for position, name in enumerate(("alpha", "beta")):
            keys, vectors = make_corpus(n=36, dim=DIM, seed=20 + position)
            paths[name] = save_layout(tmp_path, keys, vectors, 1,
                                      seed=20 + position, name=name)
        catalog = Catalog(root=tmp_path)
        for name, path in paths.items():
            catalog.add(CatalogEntry(name=name, path=path.name,
                                     kind="vector",
                                     default=(name == "alpha")))
        handle = CatalogHandle(catalog, mmap=True, max_open=max_open)
        handle.configure_dispatch(cache_size=16)
        return handle

    def test_eviction_drops_cache_with_dispatcher(self, tmp_path):
        handle = self.make_handle(tmp_path)
        alpha = handle.get("alpha")
        assert alpha.cache is not None and alpha.dispatcher is not None
        alpha.cache.exact.put(b"sentinel", ["entry"])
        handle.get("beta")  # max_open=1: evicts alpha
        assert not alpha.open
        assert alpha.cache is None
        assert alpha.dispatcher is None
        reopened = handle.get("alpha")
        assert reopened.cache is not None
        assert reopened.cache.exact.get(b"sentinel") is None, \
            "a reopened slot must start with a cold cache"

    def test_counters_survive_eviction(self, tmp_path):
        handle = self.make_handle(tmp_path)
        alpha = handle.get("alpha")
        keys, vectors = make_corpus(n=36, dim=DIM, seed=20)
        alpha.cache.query_many(vectors[:2], k=3)
        assert alpha.stats.cache.misses == 2
        handle.get("beta")
        reopened = handle.get("alpha")
        assert reopened.stats.cache.misses == 2, \
            "cache counters live on the stats, not the engine"
        reopened.cache.query_many(vectors[:2], k=3)
        assert reopened.stats.cache.misses == 4

    def test_cache_size_zero_disables_caching(self, tmp_path):
        handle = self.make_handle(tmp_path)
        handle.configure_dispatch(cache_size=0)
        assert not handle.cache_enabled
        slot = handle.get("alpha")
        assert slot.cache is None
        assert slot.dispatcher.engine is None

    def test_disabled_cache_has_no_stats_section(self, tmp_path):
        """A no-cache server omits the per-index ``cache`` section from
        ``/stats`` entirely — an all-zero section would break the
        documented ``hits + misses + bypassed == queries`` partition."""
        keys, vectors = make_corpus(n=36, dim=DIM, seed=20)
        path = save_layout(tmp_path, keys, vectors, 1, seed=20)
        index = open_index(path)
        with ServerThread(index, cache_size=0) as handle:
            reply = post_query(handle.port,
                               {"vector": vectors[0].tolist(), "k": 3})
            assert len(reply["hits"]) == 3
            stats = http_get(handle.port, "/stats")
        section = next(iter(stats["indexes"].values()))
        assert section["queries"] == 1
        assert "cache" not in section

    def test_bad_cache_knobs_fail_eagerly(self, tmp_path):
        handle = self.make_handle(tmp_path)
        with pytest.raises(ValueError, match="cache size"):
            handle.configure_dispatch(cache_size=-1)
        with pytest.raises(ValueError, match="cache ttl"):
            handle.configure_dispatch(cache_ttl=0)


class TestManifestGeneration:
    def test_replace_bumps_the_entry_generation(self, tmp_path):
        keys, vectors = make_corpus(n=24, dim=DIM, seed=30)
        path = save_layout(tmp_path, keys, vectors, 1, seed=30)
        catalog = Catalog(root=tmp_path)
        catalog.add(CatalogEntry(name="main", path=path.name,
                                 kind="vector", default=True))
        assert catalog.entries["main"].generation == 0
        catalog.replace(CatalogEntry(name="main", path=path.name,
                                     kind="vector"))
        assert catalog.entries["main"].generation == 1
        assert catalog.entries["main"].default, \
            "default status carries over on replace"
        catalog.save()
        reloaded = Catalog.load(tmp_path)
        assert reloaded.entries["main"].generation == 1

    def test_replace_unknown_name_is_key_error(self):
        catalog = Catalog()
        with pytest.raises(KeyError):
            catalog.replace(CatalogEntry(name="ghost", path="x",
                                         kind="vector"))

    def test_manifest_rejects_bad_generation(self, tmp_path):
        keys, vectors = make_corpus(n=24, dim=DIM, seed=31)
        path = save_layout(tmp_path, keys, vectors, 1, seed=31)
        manifest = {"catalog_version": 1,
                    "entries": [{"name": "main", "path": path.name,
                                 "kind": "vector", "generation": -1}]}
        (tmp_path / "catalog.json").write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="generation"):
            Catalog.load(tmp_path)

    def test_older_manifest_without_generation_reads_as_zero(self, tmp_path):
        keys, vectors = make_corpus(n=24, dim=DIM, seed=32)
        path = save_layout(tmp_path, keys, vectors, 1, seed=32)
        manifest = {"catalog_version": 1,
                    "entries": [{"name": "main", "path": path.name,
                                 "kind": "vector"}]}
        (tmp_path / "catalog.json").write_text(json.dumps(manifest))
        assert Catalog.load(tmp_path).entries["main"].generation == 0
