"""Property layer: cached answers ARE the uncached answers — exactly.

Hypothesis walks random corpora × shard counts {1, 2, 5} × mmap ×
zipfian query streams through a :class:`CachedQueryEngine` and
requires every served ranking — keys, bit-equal scores, tie order — to
match the same index's plain ``query_many``.  Because the stream is
zipfian, most examples serve a mix of exact hits, semantic (shortlist)
hits, and misses in one batch; because the corpora are duplicate-dense
and the queries include exact corpus rows, ties are everywhere a
demux/rescore bug could hide.

A dedicated class pins the brute-force fallback boundary: ``k`` right
at the post-exclude candidate total, where a cached shortlist that
mis-counted candidates by one would flip a query on or off the
brute-force path.
"""

import numpy as np
import pytest
from cacheutil import (
    build_index,
    make_corpus,
    ranked_many,
    save_layout,
    zipfian_stream,
)
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cache import CachedQueryEngine
from repro.index import open_index

DIM = 12
SHARD_COUNTS = (1, 2, 5)


class TestCachedEqualsUncached:
    @pytest.fixture(scope="class")
    def layouts(self, tmp_path_factory):
        """One tie-dense saved layout per shard count, built once; the
        hypothesis examples reopen them (mmap or eager) per run."""
        built = {}
        for n_shards in SHARD_COUNTS:
            tmp = tmp_path_factory.mktemp(f"cache-shards{n_shards}")
            keys, vectors = make_corpus(n=90, dim=DIM, seed=7)
            built[n_shards] = (save_layout(tmp, keys, vectors, n_shards,
                                           seed=7), keys, vectors)
        return built

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(n_shards=st.sampled_from(SHARD_COUNTS), mmap=st.booleans(),
           seed=st.integers(0, 2**16), k=st.integers(1, 12),
           stream_len=st.integers(6, 48),
           cache_entries=st.sampled_from([2, 8, 64]),
           with_excludes=st.booleans())
    def test_zipfian_stream_matches_query_many(self, layouts, n_shards,
                                               mmap, seed, k, stream_len,
                                               cache_entries, with_excludes):
        path, keys, vectors = layouts[n_shards]
        index = open_index(path, mmap=mmap)
        engine = CachedQueryEngine(index, max_entries=cache_entries)
        rng = np.random.default_rng(seed)
        # Pool: exact corpus rows (score-1 ties), tiny jitters of them
        # (often identical band keys → semantic tier), fresh gaussians.
        rows = rng.integers(0, len(keys), size=4)
        pool = np.concatenate([
            vectors[rows],
            vectors[rows[:2]] + rng.normal(scale=1e-9, size=(2, DIM)),
            rng.standard_normal((3, DIM)),
        ])
        stream = zipfian_stream(rng, len(pool), stream_len)
        exclude_pool = [None, keys[0], keys[int(rows[0])]]
        cursor = 0
        while cursor < len(stream):
            size = int(rng.integers(1, 6))
            batch = stream[cursor:cursor + size]
            cursor += size
            matrix = pool[batch]
            excludes = ([str(rng.choice(
                             [e for e in exclude_pool if e is not None]))
                         if rng.random() < 0.5 else None
                         for _ in batch] if with_excludes
                        else [None] * len(batch))
            got = engine.query_many(matrix, k=k, excludes=excludes)
            want = index.query_many(matrix, k=k, excludes=excludes)
            assert ranked_many(got) == ranked_many(want)
        counters = engine.counters
        served = (counters.exact_hits + counters.semantic_hits
                  + counters.misses)
        assert served == len(stream)
        if stream_len > len(pool) * 2 and cache_entries >= len(pool):
            # A zipfian stream much longer than its pool must actually
            # exercise the hit path, or this test proves nothing.
            assert counters.exact_hits + counters.semantic_hits > 0

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(n_shards=st.sampled_from(SHARD_COUNTS),
           seed=st.integers(0, 2**16), repeats=st.integers(2, 4),
           no_cache_round=st.booleans())
    def test_no_cache_rounds_interleave_cleanly(self, layouts, n_shards,
                                                seed, repeats,
                                                no_cache_round):
        """Bypassed rounds neither read nor write; cached rounds around
        them still serve exact answers."""
        path, _keys, _vectors = layouts[n_shards]
        index = open_index(path, mmap=True)
        engine = CachedQueryEngine(index, max_entries=16)
        rng = np.random.default_rng(seed)
        matrix = rng.standard_normal((3, DIM))
        want = ranked_many(index.query_many(matrix, k=5))
        for round_number in range(repeats):
            bypass = no_cache_round and round_number % 2 == 1
            got = engine.query_many(matrix, k=5, no_cache=bypass)
            assert ranked_many(got) == want
        sizes = engine.sizes()
        if no_cache_round:
            assert engine.counters.bypassed == 3 * (repeats // 2)
        assert sizes["exact_entries"] <= 3


class TestFallbackBoundary:
    """``k`` at the exact brute-force threshold: the fallback fires
    when a query's *post-exclude global* candidate count is below its
    ``k``, so cached shortlists must reproduce that count exactly."""

    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(n_shards=st.sampled_from(SHARD_COUNTS),
           seed=st.integers(0, 2**16), offset=st.sampled_from([-1, 0, 1]),
           exclude_hit=st.booleans())
    def test_k_at_the_candidate_total(self, n_shards, seed, offset,
                                      exclude_hit):
        rng = np.random.default_rng(seed)
        keys, vectors = make_corpus(n=24, dim=DIM, seed=seed % 97)
        index = build_index(keys, vectors, n_shards, seed=0)
        engine = CachedQueryEngine(index, max_entries=16)
        query = vectors[int(rng.integers(0, len(keys)))][None, :]
        # The global LSH candidate total for this query decides the
        # boundary; pin k right at it (clamped to >= 1).
        if n_shards == 1:
            total = len(index.lsh.candidates(query[0]))
        else:
            total = sum(len(shard.lsh.candidates(query[0]))
                        for shard in index.shards)
        k = max(1, total + offset)
        excludes = [keys[0] if exclude_hit else None]
        for _ in range(3):  # miss, then exact hit, then exact hit
            got = engine.query_many(query, k=k, excludes=excludes)
            want = index.query_many(query, k=k, excludes=excludes)
            assert ranked_many(got) == ranked_many(want)
        # Different k on the same vector: served from the semantic
        # tier's shortlist, still crossing the boundary correctly.
        for k2 in {max(1, total - 1), max(1, total), total + 1}:
            got = engine.query_many(query, k=k2, excludes=excludes)
            want = index.query_many(query, k=k2, excludes=excludes)
            assert ranked_many(got) == ranked_many(want)


class TestExcludeRegression:
    """The latent-hazard fix at engine level: two requests differing
    only in ``exclude`` must not share a cache entry."""

    def test_exclude_variants_are_cached_separately(self):
        keys, vectors = make_corpus(n=60, dim=DIM, seed=3)
        index = build_index(keys, vectors, 1, seed=0)
        engine = CachedQueryEngine(index, max_entries=16)
        query = vectors[0][None, :]
        top = index.query_many(query, k=3)[0][0].key
        with_none = engine.query_many(query, k=3, excludes=[None])
        with_top = engine.query_many(query, k=3, excludes=[top])
        # Both answers exact...
        assert ranked_many(with_none) == ranked_many(
            index.query_many(query, k=3, excludes=[None]))
        assert ranked_many(with_top) == ranked_many(
            index.query_many(query, k=3, excludes=[top]))
        # ...and genuinely different: the excluded key is gone.
        assert top in [hit.key for hit in with_none[0]]
        assert top not in [hit.key for hit in with_top[0]]
        # Replay both from cache; the entries must not have collided.
        assert ranked_many(engine.query_many(query, k=3,
                                             excludes=[None])) \
            == ranked_many(with_none)
        assert ranked_many(engine.query_many(query, k=3,
                                             excludes=[top])) \
            == ranked_many(with_top)
        assert engine.counters.exact_hits == 2
