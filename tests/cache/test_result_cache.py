"""Unit layer: the TTL-LRU primitive and the exact-key fingerprint.

The fingerprint tests pin the latent-hazard fix the cache layer was
born with: a result cache keyed on the query vector alone would serve
request A's ranking to request B whenever they differed only in ``k``,
``exclude``, index kind, or index generation.  Every one of those must
split the key.
"""

import numpy as np
import pytest

from repro.cache import CacheCounters, TTLCache, exact_key
from repro.cache.result_cache import validate_cache_params


class TestTTLCache:
    def test_get_returns_what_put_stored(self):
        cache = TTLCache(4)
        cache.put(b"a", [1, 2])
        assert cache.get(b"a") == [1, 2]
        assert cache.get(b"missing") is None

    def test_lru_eviction_order(self):
        cache = TTLCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1          # refreshes 'a'
        cache.put("c", 3)                   # evicts 'b', the LRU
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.evictions == 1

    def test_overwrite_does_not_grow(self):
        cache = TTLCache(2)
        cache.put("a", 1)
        cache.put("a", 2)
        assert len(cache) == 1
        assert cache.get("a") == 2

    def test_ttl_expires_entries(self):
        clock = [0.0]
        cache = TTLCache(4, ttl=10.0, clock=lambda: clock[0])
        cache.put("a", 1)
        clock[0] = 9.9
        assert cache.get("a") == 1
        clock[0] = 10.0
        assert cache.get("a") is None
        assert cache.expirations == 1
        assert len(cache) == 0

    def test_overflow_pop_of_expired_entry_counts_as_expiration(self):
        """An entry that timed out but was never swept by a get() and
        is then popped by put()'s overflow loop is an *expiration*, not
        an eviction — the counters feed /stats, where evictions signal
        capacity pressure and must not be inflated by dead entries."""
        clock = [0.0]
        cache = TTLCache(2, ttl=10.0, clock=lambda: clock[0])
        cache.put("a", 1)
        cache.put("b", 2)
        clock[0] = 10.0                     # both are now expired...
        cache.put("c", 3)                   # ...and 'a' pops on overflow
        assert cache.expirations == 1
        assert cache.evictions == 0
        clock[0] = 10.5                     # 'c' (fresh at t=10) still live
        cache.put("d", 4)                   # pops 'b': also expired
        assert cache.expirations == 2
        assert cache.evictions == 0
        cache.put("e", 5)                   # pops 'c': live → real eviction
        assert cache.expirations == 2
        assert cache.evictions == 1

    def test_no_ttl_means_no_expiry(self):
        clock = [0.0]
        cache = TTLCache(4, ttl=None, clock=lambda: clock[0])
        cache.put("a", 1)
        clock[0] = 1e9
        assert cache.get("a") == 1

    def test_clear_reports_dropped_count(self):
        cache = TTLCache(4)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.clear() == 2
        assert len(cache) == 0
        assert cache.get("a") is None

    def test_none_is_rejected_as_a_value(self):
        with pytest.raises(ValueError, match="None"):
            TTLCache(4).put("a", None)

    def test_contains_is_side_effect_free(self):
        """``in`` must not refresh LRU recency: probing 'a' then
        inserting over capacity still evicts 'a' (the true LRU), not
        'b' — a containment check that bumped recency would silently
        reorder eviction."""
        cache = TTLCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert "a" in cache
        cache.put("c", 3)                   # 'a' is still the LRU
        assert cache.get("a") is None
        assert cache.get("b") == 2
        assert cache.get("c") == 3

    def test_contains_does_not_expire_or_count(self):
        """``in`` on an expired entry reports absent without deleting
        it or bumping the ``expirations`` counter; the entry stays in
        place for ``get`` to reap."""
        clock = [0.0]
        cache = TTLCache(4, ttl=10.0, clock=lambda: clock[0])
        cache.put("a", 1)
        clock[0] = 10.0
        assert "a" not in cache
        assert cache.expirations == 0
        assert len(cache) == 1              # still parked, unswept
        assert cache.get("a") is None       # get() does the reaping
        assert cache.expirations == 1
        assert len(cache) == 0

    def test_contains_sees_live_entries(self):
        clock = [0.0]
        cache = TTLCache(4, ttl=10.0, clock=lambda: clock[0])
        cache.put("a", 1)
        clock[0] = 9.9
        assert "a" in cache
        assert "missing" not in cache

    @pytest.mark.parametrize("size,ttl", [(0, None), (-1, None),
                                          (4, 0), (4, -1.0), (4, True)])
    def test_bad_bounds_are_rejected(self, size, ttl):
        with pytest.raises(ValueError):
            TTLCache(size, ttl)

    def test_size_zero_is_valid_for_validation_only(self):
        # 0 means "caching disabled" at the engine level; the params
        # validator accepts it, the storage constructor does not.
        validate_cache_params(0, None)
        with pytest.raises(ValueError):
            TTLCache(0)


class TestExactKey:
    """The regression suite for the exact-cache hazard: two requests
    differing in anything answer-changing must never share an entry."""

    VEC = np.arange(8, dtype=float)

    def key(self, **overrides):
        params = dict(vector=self.VEC, k=5, kind="table",
                      exclude=None, generation=0)
        params.update(overrides)
        return exact_key(**params)

    def test_identical_requests_share_a_key(self):
        assert self.key() == self.key()
        # dtype/layout normalisation: an int vector of equal values
        # hashes like its float form.
        assert exact_key(np.arange(8), 5, "table", None, 0) == self.key()

    def test_exclude_splits_the_key(self):
        assert self.key(exclude="t00001") != self.key(exclude=None)
        assert self.key(exclude="t00001") != self.key(exclude="t00002")

    def test_empty_string_exclude_differs_from_none(self):
        assert self.key(exclude="") != self.key(exclude=None)

    def test_kind_splits_the_key(self):
        assert self.key(kind="column") != self.key(kind="table")

    def test_k_splits_the_key(self):
        assert self.key(k=6) != self.key(k=5)

    def test_generation_splits_the_key(self):
        assert self.key(generation=1) != self.key(generation=0)

    def test_vector_splits_the_key(self):
        other = self.VEC.copy()
        other[0] += 1e-12
        assert exact_key(other, 5, "table", None, 0) != self.key()


class TestCacheCounters:
    def test_events_tally_and_snapshot(self):
        counters = CacheCounters()
        counters.record("exact")
        counters.record("semantic", 2)
        counters.record("miss")
        counters.record("bypass", 3)
        snap = counters.snapshot()
        assert snap["exact_hits"] == 1
        assert snap["semantic_hits"] == 2
        assert snap["misses"] == 1
        assert snap["bypassed"] == 3
        assert snap["hit_rate"] == pytest.approx(3 / 4)

    def test_unknown_event_is_rejected(self):
        with pytest.raises(ValueError, match="unknown cache event"):
            CacheCounters().record("hit")

    def test_empty_hit_rate_is_zero(self):
        assert CacheCounters().snapshot()["hit_rate"] == 0.0
