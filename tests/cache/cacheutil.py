"""Shared helpers for the result-cache test layer.

Same corpus discipline as the serving/catalog tests: seeded gaussian
vectors with duplicate rows (dense score ties), so a cache that served
a near-miss — a stale entry, a neighbouring shortlist, someone else's
ranking — cannot hide behind unique scores.  Query streams are
*zipfian* over a small pool, the workload the cache exists for.
"""

from __future__ import annotations

import numpy as np

from repro.index import IndexSpec, ShardedIndex, VectorIndex

#: Each distinct vector appears this many times (distinct keys).
DUP_EVERY = 3


def make_corpus(n: int = 120, dim: int = 12, seed: int = 0):
    rng = np.random.default_rng(seed)
    base = rng.standard_normal(((n + DUP_EVERY - 1) // DUP_EVERY, dim))
    vectors = np.repeat(base, DUP_EVERY, axis=0)[:n]
    return [f"t{i:05d}" for i in range(n)], vectors


def build_index(keys, vectors, n_shards: int, seed: int = 0):
    dim = vectors.shape[1]
    if n_shards == 1:
        index = VectorIndex(dim=dim, seed=seed)
    else:
        index = ShardedIndex.create(
            IndexSpec(kind="vector", dim=dim, seed=seed), n_shards)
    index.add_batch(keys, vectors)
    return index


def save_layout(tmp_path, keys, vectors, n_shards: int, seed: int = 0,
                name: str = "index"):
    """Persist as a single ``.npz`` (``n_shards == 1``) or a sharded
    directory; returns the saved path for ``open_index``."""
    index = build_index(keys, vectors, n_shards, seed=seed)
    if n_shards == 1:
        return index.save(tmp_path / f"{name}.npz")
    return index.save(tmp_path / name)


def zipfian_stream(rng: np.random.Generator, pool_size: int, length: int,
                   s: float = 1.1) -> np.ndarray:
    """``length`` indices into a pool of ``pool_size`` queries, drawn
    zipfian: P(rank r) ∝ 1/r^s — a few hot queries, a long cold tail."""
    weights = 1.0 / np.arange(1, pool_size + 1) ** s
    return rng.choice(pool_size, size=length, p=weights / weights.sum())


def ranked(hits) -> list[tuple[str, float]]:
    """Exact (key, score) pairs — no rounding; cached must be
    bit-identical to uncached, not merely close."""
    return [(hit.key, hit.score) for hit in hits]


def ranked_many(hits_per_query) -> list[list[tuple[str, float]]]:
    return [ranked(hits) for hits in hits_per_query]
