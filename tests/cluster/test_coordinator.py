"""The coordinator's load-bearing property: **distributed equals
local, bit for bit**.

Hypothesis drives query batches through every (shard count × server
split × mmap) cluster shape and requires `RemoteShardedIndex.
query_many` to return exactly what the local `ShardedIndex` over the
same flat shard sequence returns — keys, scores, tie order — including
at the brute-force fallback boundary ``k ∈ {total-1, total, total+1}``
around each query's global candidate total, where a coordinator that
decided the fallback on a *per-server* count instead of the global one
would flip queries on or off the brute path.

A second class pins the composition surfaces: generation propagation
(restart-monotonic), the exact-tier result cache over a remote index,
and the identity checks `connect()` performs.
"""

import numpy as np
import pytest
from clusterutil import make_corpus, query_pool, ranked, save_layout
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cache import CachedQueryEngine
from repro.cluster import (
    ClusterHarness,
    RemoteShardedIndex,
    ShardServerThread,
    Topology,
    TopologyError,
    split_layout,
)
from repro.index import IndexSpec, ShardedIndex, VectorIndex, open_index

DIM = 16
#: (n_shards, n_servers) — every split of the tier-1 shard counts.
SHAPES = [(1, 1), (2, 1), (2, 2), (5, 1), (5, 2), (5, 5)]


@pytest.fixture(scope="module")
def clusters(tmp_path_factory):
    """One running cluster per shape, shared by every hypothesis
    example: {(n_shards, n_servers): (local_path, coordinator)}."""
    built = {}
    stack = []
    for n_shards, n_servers in SHAPES:
        tmp = tmp_path_factory.mktemp(f"coord-{n_shards}x{n_servers}")
        keys, vectors = make_corpus(n=75, dim=DIM, seed=5)
        local_path = save_layout(tmp, keys, vectors, n_shards, seed=5)
        paths = (split_layout(local_path, tmp / "split", n_servers)
                 if n_shards > 1 else [local_path])
        harness = ClusterHarness(paths).start()
        stack.append(harness)
        built[(n_shards, n_servers)] = (local_path, vectors,
                                        harness.connect(retries=1))
    yield built
    for harness in stack:
        harness.stop()


class TestDistributedEqualsLocal:
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.function_scoped_fixture])
    @given(shape=st.sampled_from(SHAPES), mmap=st.booleans(),
           seed=st.integers(0, 2**16), k=st.integers(1, 80),
           n_queries=st.integers(1, 6), with_excludes=st.booleans())
    def test_query_many_bit_identical(self, clusters, shape, mmap, seed,
                                      k, n_queries, with_excludes):
        local_path, vectors, remote = clusters[shape]
        local = open_index(local_path, mmap=mmap)
        rng = np.random.default_rng(seed)
        pool = query_pool(vectors, n_fresh=4, seed=seed)
        matrix = pool[rng.integers(0, len(pool), size=n_queries)]
        excludes = None
        if with_excludes:
            excludes = [f"t{rng.integers(0, 75):05d}"
                        if rng.random() < 0.5 else None
                        for _ in range(n_queries)]
        served = remote.query_many(matrix, k=k, excludes=excludes)
        offline = local.query_many(matrix, k=k, excludes=excludes)
        assert [ranked(hits) for hits in served] == \
               [ranked(hits) for hits in offline]

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.function_scoped_fixture])
    @given(shape=st.sampled_from(SHAPES), seed=st.integers(0, 2**16))
    def test_brute_force_fallback_boundary(self, clusters, shape, seed):
        """k right at {total-1, total, total+1} around the query's
        *global* LSH candidate total — the exact points where the
        fallback decision flips."""
        local_path, vectors, remote = clusters[shape]
        local = open_index(local_path, mmap=True)
        rng = np.random.default_rng(seed)
        pool = query_pool(vectors, n_fresh=4, seed=seed)
        matrix = pool[rng.integers(0, len(pool))][None, :]
        shards = (list(local.shards) if isinstance(local, ShardedIndex)
                  else [local])
        total = sum(shard.query_partial_many(matrix, 1,
                                             excludes=[None])[0][0]
                    for shard in shards)
        for k in {max(1, total - 1), max(1, total), total + 1}:
            served = remote.query_many(matrix, k=k)
            offline = local.query_many(matrix, k=k)
            assert [ranked(h) for h in served] == \
                   [ranked(h) for h in offline], (total, k)

    def test_query_vector_and_surface(self, clusters):
        local_path, vectors, remote = clusters[(5, 2)]
        local = open_index(local_path, mmap=True)
        assert remote.kind == local.kind
        assert remote.dim == local.dim
        assert remote.n_shards == local.n_shards
        assert remote.n_servers == 2
        assert len(remote) == len(local)
        assert remote.format_version == local.format_version
        hit_lists = remote.query_vector(vectors[0], k=3,
                                        exclude="t00000", jobs=2)
        offline = local.query_many(vectors[0][None, :], k=3,
                                   excludes=["t00000"])[0]
        assert ranked(hit_lists) == ranked(offline)

    def test_bad_params_rejected(self, clusters):
        _path, vectors, remote = clusters[(2, 2)]
        with pytest.raises(ValueError, match="k must be"):
            remote.query_many(vectors[:1], k=0)
        with pytest.raises(ValueError):
            remote.query_many(vectors[:1], k=3, jobs=0)


def _memory_cluster(n_entries=30, seed=9, dim=DIM):
    """One in-memory shard server whose index the test can mutate."""
    rng = np.random.default_rng(seed)
    index = VectorIndex(dim=dim, seed=seed)
    keys = [f"m{i:04d}" for i in range(n_entries)]
    vectors = rng.standard_normal((n_entries, dim))
    index.add_batch(keys, vectors)
    return index, vectors


class TestGenerationAndCache:
    def test_generation_propagates_from_shard_mutations(self):
        index, vectors = _memory_cluster()
        with ShardServerThread(index) as handle:
            remote = RemoteShardedIndex.connect(
                Topology.from_addresses([("127.0.0.1", handle.port)]),
                retries=1)
            try:
                before = remote.generation
                assert before == index.generation
                index.add("extra", np.ones(DIM))
                # A query fan-out carries the new generation back.
                remote.query_many(vectors[:1], k=3)
                assert remote.generation == index.generation > before
            finally:
                remote.close()

    def test_generation_survives_restart_monotonically(self, tmp_path):
        """A shard restarting from disk resets its local counter; the
        coordinator's offset must keep the cluster generation from ever
        repeating (cache flushed spuriously at worst, never stale)."""
        keys, vectors = make_corpus(n=30, dim=DIM, seed=2)
        path = save_layout(tmp_path, keys, vectors, 1, seed=2)
        with ClusterHarness([path]) as cluster:
            remote = cluster.connect(retries=3, backoff=0.01)
            live = cluster.members[0].server.index
            live.add("fresh", np.ones(DIM))
            remote.query_many(vectors[:1], k=3)
            high = remote.generation
            # Restart: the reopened index starts at generation 0 again.
            cluster.stop_shard(0)
            cluster.start_shard(0)
            remote.query_many(vectors[:1], k=3)
            assert remote.generation >= high

    def test_exact_cache_over_remote_index(self):
        index, vectors = _memory_cluster()
        with ShardServerThread(index) as handle:
            remote = RemoteShardedIndex.connect(
                Topology.from_addresses([("127.0.0.1", handle.port)]),
                retries=1)
            try:
                engine = CachedQueryEngine(remote, max_entries=32)
                first = engine.query_many(vectors[:2], k=4)
                again = engine.query_many(vectors[:2], k=4)
                assert [ranked(h) for h in first] == \
                       [ranked(h) for h in again]
                # Remote indexes have no LSH surface at the coordinator:
                # second pass is served purely from the exact tier.
                assert engine.counters.exact_hits == 2
                assert engine.counters.semantic_hits == 0
                assert engine.counters.misses == 2
                assert ranked(first[0]) == ranked(
                    remote.query_many(vectors[:1], k=4)[0])
            finally:
                remote.close()

    def test_exact_cache_invalidates_on_shard_data_change(self):
        index, vectors = _memory_cluster()
        with ShardServerThread(index) as handle:
            remote = RemoteShardedIndex.connect(
                Topology.from_addresses([("127.0.0.1", handle.port)]),
                retries=1)
            try:
                engine = CachedQueryEngine(remote, max_entries=32)
                engine.query_many(vectors[:1], k=4)
                # Mutate the shard: a near-duplicate of the query lands
                # at the top.  The cached entry must not be served.
                index.add("winner", vectors[0])
                remote.query_many(vectors[1:2], k=1)  # observe new gen
                served = engine.query_many(vectors[:1], k=4)[0]
                assert ranked(served) == ranked(
                    remote.query_many(vectors[:1], k=4)[0])
                assert "winner" in {hit.key for hit in served}
            finally:
                remote.close()


class TestConnectValidation:
    def test_spec_mismatch_refuses_to_boot(self):
        a_index, _ = _memory_cluster(seed=1)
        b_index = VectorIndex(dim=DIM, seed=99)  # different hyperplanes
        b_index.add_batch([f"b{i}" for i in range(10)],
                          np.random.default_rng(1).standard_normal((10, DIM)))
        with ShardServerThread(a_index) as a, ShardServerThread(b_index) as b:
            topology = Topology.from_addresses(
                [("127.0.0.1", a.port), ("127.0.0.1", b.port)])
            with pytest.raises(TopologyError, match="spec"):
                RemoteShardedIndex.connect(topology, retries=0)

    def test_unreachable_server_refuses_to_boot(self):
        index, _ = _memory_cluster()
        with ShardServerThread(index) as handle:
            topology = Topology.from_addresses(
                [("127.0.0.1", handle.port), ("127.0.0.1", 1)])
            with pytest.raises(Exception):
                RemoteShardedIndex.connect(topology, retries=0,
                                           timeout=2.0, backoff=0.0)

    def test_split_layout_rejects_impossible_split(self, tmp_path):
        keys, vectors = make_corpus(n=30, dim=DIM, seed=2)
        path = save_layout(tmp_path, keys, vectors, 2, seed=2)
        with pytest.raises(ValueError, match="cannot split"):
            split_layout(path, tmp_path / "split", 3)

    def test_split_layout_preserves_flat_order(self, tmp_path):
        keys, vectors = make_corpus(n=50, dim=DIM, seed=4)
        path = save_layout(tmp_path, keys, vectors, 5, seed=4)
        local = open_index(path)
        paths = split_layout(path, tmp_path / "split", 2)
        flat = []
        for sub in paths:
            opened = open_index(sub)
            flat.extend(list(opened.shards)
                        if isinstance(opened, ShardedIndex) else [opened])
        assert len(flat) == local.n_shards
        for ours, theirs in zip(flat, local.shards):
            assert list(ours.keys) == list(theirs.keys)
