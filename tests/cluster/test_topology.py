"""Topology file handling: load/save round-trip and one clear error
per way a hand-edited topology.json can be wrong."""

import json

import pytest

from repro.cluster import ShardAddress, Topology, TopologyError


def test_round_trip(tmp_path):
    topology = Topology.from_addresses([("127.0.0.1", 8100),
                                        ("10.0.0.7", 8101)])
    path = topology.save(tmp_path / "topology.json")
    loaded = Topology.load(path)
    assert list(loaded) == list(topology)
    assert [str(address) for address in loaded] == ["127.0.0.1:8100",
                                                    "10.0.0.7:8101"]


def test_order_is_preserved(tmp_path):
    """Topology order is load-bearing: it defines the flat shard
    sequence the coordinator merges in."""
    addresses = [("h3", 3), ("h1", 1), ("h2", 2)]
    loaded = Topology.load(
        Topology.from_addresses(addresses).save(tmp_path / "t.json"))
    assert [(a.host, a.port) for a in loaded] == addresses


def test_shard_address_str():
    assert str(ShardAddress("box", 9000)) == "box:9000"


@pytest.mark.parametrize("payload, fragment", [
    ("not json {", "JSON"),
    (json.dumps([1, 2]), "object"),
    (json.dumps({}), "shards"),
    (json.dumps({"shards": []}), "non-empty"),
    (json.dumps({"shards": "nope"}), "list"),
    (json.dumps({"shards": [{"host": "h"}]}), "port"),
    (json.dumps({"shards": [{"port": 1}]}), "host"),
    (json.dumps({"shards": [{"host": 1, "port": 1}]}), "host"),
    (json.dumps({"shards": [{"host": "h", "port": "x"}]}), "port"),
    (json.dumps({"shards": [{"host": "h", "port": 0}]}), "port"),
    (json.dumps({"shards": [{"host": "h", "port": 1, "x": 2}]}), "unknown"),
])
def test_bad_files_fail_with_one_clear_error(tmp_path, payload, fragment):
    path = tmp_path / "topology.json"
    path.write_text(payload)
    with pytest.raises((TopologyError, ValueError)) as excinfo:
        Topology.load(path)
    assert fragment.lower() in str(excinfo.value).lower()


def test_missing_file(tmp_path):
    with pytest.raises(TopologyError, match="no topology file"):
        Topology.load(tmp_path / "absent.json")


def test_empty_from_addresses():
    with pytest.raises(TopologyError, match="no shard servers"):
        Topology.from_addresses([])
