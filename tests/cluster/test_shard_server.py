"""Shard-server wire contract: what ``/partial_query`` /
``/brute_query`` / ``/healthz`` return is exactly what the local
per-shard calls (`query_partial_many` / `query_brute_many`) compute —
counts, keys, bit-equal scores — one entry per local shard in shard
order, plus the generation stamp the coordinator's cache keys on."""

import json

import numpy as np
import pytest
from clusterutil import (
    get_json,
    http_request,
    make_corpus,
    post_json,
    query_pool,
    ranked,
    ranked_wire,
    save_layout,
)

from repro.cluster import ShardServerThread
from repro.index import FORMAT_VERSION, open_index

DIM = 16


@pytest.fixture(scope="module", params=[1, 3])
def layout(request, tmp_path_factory):
    tmp = tmp_path_factory.mktemp(f"shardsrv{request.param}")
    keys, vectors = make_corpus(n=60, dim=DIM, seed=3)
    path = save_layout(tmp, keys, vectors, request.param, seed=3)
    return path, vectors, request.param


@pytest.fixture(scope="module")
def server(layout):
    path, _vectors, _n = layout
    with ShardServerThread(open_index(path, mmap=True)) as handle:
        yield handle


def test_healthz_reports_identity(layout, server):
    path, _vectors, n_shards = layout
    index = open_index(path)
    status, payload = get_json(server.port, "/healthz")
    assert status == 200
    assert payload["status"] == "ok"
    assert payload["entries"] == len(index)
    assert payload["shards"] == n_shards
    assert payload["format_version"] == FORMAT_VERSION
    assert payload["generation"] == index.generation
    spec = payload["spec"]
    assert spec["kind"] == index.kind
    assert spec["dim"] == DIM
    assert {"n_planes", "n_bands", "seed"} <= set(spec)


def test_partial_query_matches_local_per_shard(layout, server):
    path, vectors, n_shards = layout
    index = open_index(path, mmap=True)
    shards = list(index.shards) if n_shards > 1 else [index]
    matrix = query_pool(vectors)
    status, payload = post_json(server.port, "/partial_query",
                                {"vectors": matrix.tolist(), "k": 5})
    assert status == 200
    assert payload["generation"] == index.generation
    assert len(payload["shards"]) == n_shards
    for shard, wire in zip(shards, payload["shards"]):
        local = shard.query_partial_many(matrix, 5,
                                         excludes=[None] * len(matrix))
        assert len(wire["queries"]) == len(matrix)
        for (count, hits), entry in zip(local, wire["queries"]):
            assert entry["count"] == count
            assert ranked_wire(entry["hits"]) == ranked(hits)


def test_brute_query_matches_local_per_shard(layout, server):
    path, vectors, n_shards = layout
    index = open_index(path, mmap=True)
    shards = list(index.shards) if n_shards > 1 else [index]
    matrix = query_pool(vectors)[:3]
    status, payload = post_json(server.port, "/brute_query",
                                {"vectors": matrix.tolist(), "k": 4})
    assert status == 200
    for shard, wire in zip(shards, payload["shards"]):
        local = shard.query_brute_many(matrix, 4,
                                       excludes=[None] * len(matrix))
        for hits, entry in zip(local, wire["queries"]):
            assert "count" not in entry
            assert ranked_wire(entry["hits"]) == ranked(hits)


def test_excludes_are_honored(layout, server):
    path, vectors, n_shards = layout
    index = open_index(path, mmap=True)
    shards = list(index.shards) if n_shards > 1 else [index]
    matrix = vectors[:2]
    excludes = ["t00000", None]
    _status, payload = post_json(
        server.port, "/partial_query",
        {"vectors": matrix.tolist(), "k": 6, "excludes": excludes})
    for shard, wire in zip(shards, payload["shards"]):
        local = shard.query_partial_many(matrix, 6, excludes=excludes)
        for (count, hits), entry in zip(local, wire["queries"]):
            assert entry["count"] == count
            assert ranked_wire(entry["hits"]) == ranked(hits)
    served_keys = {hit["key"]
                   for entry in payload["shards"][0]["queries"][:1]
                   for hit in entry["hits"]}
    assert "t00000" not in served_keys


class TestErrorContract:
    def test_bad_json_is_400(self, server):
        status, _headers, data = http_request(server.port, "POST",
                                              "/partial_query", b"{nope")
        assert status == 400
        assert "error" in json.loads(data)

    def test_wrong_dim_is_400(self, server):
        status, payload = post_json(server.port, "/partial_query",
                                    {"vectors": [[1.0] * (DIM + 1)], "k": 3})
        assert status == 400
        assert "dims" in payload["error"]

    def test_bad_k_is_400(self, server):
        status, payload = post_json(server.port, "/brute_query",
                                    {"vectors": [[0.5] * DIM], "k": 0})
        assert status == 400
        assert "k" in payload["error"]

    def test_get_on_query_route_is_405(self, server):
        status, _headers, _data = http_request(server.port, "GET",
                                               "/partial_query")
        assert status == 405

    def test_post_on_healthz_is_405(self, server):
        status, _headers, _data = http_request(server.port, "POST",
                                               "/healthz", b"{}")
        assert status == 405

    def test_unknown_route_is_404(self, server):
        status, _headers, _data = http_request(server.port, "GET", "/nope")
        assert status == 404
