"""Shared helpers for the cluster test layer.

Corpora are the serving layer's tie-dense regime (every vector
appears ``DUP_EVERY`` times under distinct keys) — exactly where a
wrong merge order, a float that did not survive the wire, or a
half-merged fan-out would scramble rankings.  The load-bearing
comparison everywhere is *distributed equals local*: whatever a
:class:`~repro.cluster.RemoteShardedIndex` returns must be bit-equal —
keys, scores, tie order — to the local :class:`~repro.index.
ShardedIndex` over the same flat shard sequence.
"""

from __future__ import annotations

import http.client
import json

import numpy as np

from repro.index import IndexSpec, ShardedIndex, VectorIndex

#: Each distinct vector appears this many times (distinct keys).
DUP_EVERY = 3


def make_corpus(n: int = 120, dim: int = 16, seed: int = 0):
    """``(keys, vectors)`` with every vector duplicated ``DUP_EVERY``
    times under different keys."""
    rng = np.random.default_rng(seed)
    base = rng.standard_normal(((n + DUP_EVERY - 1) // DUP_EVERY, dim))
    vectors = np.repeat(base, DUP_EVERY, axis=0)[:n]
    keys = [f"t{i:05d}" for i in range(n)]
    return keys, vectors


def save_layout(tmp_path, keys, vectors, n_shards: int, seed: int = 0):
    """Persist the corpus as a single ``.npz`` (``n_shards == 1``) or a
    sharded directory; returns the saved path."""
    dim = vectors.shape[1]
    if n_shards == 1:
        index = VectorIndex(dim=dim, seed=seed)
        index.add_batch(keys, vectors)
        return index.save(tmp_path / "index.npz")
    sharded = ShardedIndex.create(
        IndexSpec(kind="vector", dim=dim, seed=seed), n_shards)
    sharded.add_batch(keys, vectors)
    return sharded.save(tmp_path / f"sharded-{n_shards}")


def query_pool(vectors: np.ndarray, n_fresh: int = 4, seed: int = 11):
    """Corpus rows (duplicate-tie path) plus fresh gaussians (generic
    path) as one query matrix."""
    rng = np.random.default_rng(seed)
    fresh = rng.standard_normal((n_fresh, vectors.shape[1]))
    return np.vstack([vectors[:4], fresh])


def ranked(hits) -> list[tuple[str, float]]:
    """Offline ``SearchHit`` lists to comparable ``(key, score)``
    pairs — exact equality, never approximate."""
    return [(hit.key, hit.score) for hit in hits]


def ranked_wire(hits: list[dict]) -> list[tuple[str, float]]:
    """Wire-shape hits to the same comparable pairs (JSON round-trips
    floats exactly, so equality against offline scores is exact)."""
    return [(hit["key"], hit["score"]) for hit in hits]


def http_request(port: int, method: str, path: str,
                 body: bytes | None = None, timeout: float = 30.0):
    """One request against a local server; returns ``(status, headers,
    bytes)`` — headers included so tests can assert on Retry-After."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        headers = {"Content-Type": "application/json"} if body else {}
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        conn.close()


def post_json(port: int, path: str, payload: dict, timeout: float = 30.0):
    """POST a JSON payload; returns ``(status, parsed_body)``."""
    status, _headers, data = http_request(
        port, "POST", path, json.dumps(payload).encode(), timeout=timeout)
    return status, json.loads(data)


def get_json(port: int, path: str, timeout: float = 30.0):
    status, _headers, data = http_request(port, "GET", path, timeout=timeout)
    return status, json.loads(data)
