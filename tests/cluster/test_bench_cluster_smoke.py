"""Smoke test for the cluster benchmark harness.

Runs ``benchmarks/bench_cluster.py`` at a miniature configuration —
the harness asserts every coordinator ranking bit-equal to the local
index *before* timing anything, so passing here means distributed ≡
local held over real sockets with a real coordinator, shard servers
and concurrent clients.  QPS *ordering* is deliberately not asserted
(on one box the cluster pays loopback HTTP for zero parallelism); the
tracked ``results/BENCH_cluster.json`` carries the full-scale numbers.
"""

import importlib.util
import json
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"


def load_module(name: str):
    spec = importlib.util.spec_from_file_location(name,
                                                  BENCH_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_bench_cluster_smoke(tmp_path):
    bench = load_module("bench_cluster")
    report = bench.run(n_vectors=300, dim=16, n_queries=24, k=5,
                       n_clients=2, server_counts=(1, 2), n_shards=2,
                       max_backlog=2, overload_rows=(1, 8),
                       workdir=tmp_path)
    assert report["benchmark"] == "cluster"
    modes = [(r["op"], r["mode"]) for r in report["results"]]
    assert modes == [("serve", "in-process"),
                     ("serve", "cluster(servers=1)"),
                     ("serve", "cluster(servers=2)"),
                     ("overload", "rows/request=1"),
                     ("overload", "rows/request=8")]
    for record in report["results"]:
        if record["op"] == "serve":
            assert record["seconds"] >= 0
            assert record["qps"] > 0
            assert record["n"] == 24
    # The knee: single-row requests fit a backlog of 2 at least
    # sometimes; 8-row requests can never fit and are all shed.
    waves = {r["mode"]: r for r in report["results"]
             if r["op"] == "overload"}
    assert waves["rows/request=8"]["ok"] == 0
    assert waves["rows/request=8"]["shed"] > 0
    assert waves["rows/request=8"]["shed_rate"] == 1.0
    assert waves["rows/request=1"]["ok"] > 0
    # JSON-serializable, as the BENCH_*.json tracking requires.
    (tmp_path / "BENCH_cluster.json").write_text(json.dumps(report))
    text = bench.render(report).to_text()
    assert "in-process" in text and "cluster(servers=2)" in text
    assert "shed" in text
