"""Fault injection: a dead shard yields one clear error (never a
half-merged ranking), and a restarted shard is picked back up without
touching the coordinator.

The soak test is the acceptance criterion in miniature: concurrent
clients hammer the coordinator while one shard server is stopped and
restarted mid-run.  Every response that *succeeds* must be bit-equal
to the local ranking; every failure must be the cluster's own error
type — zero wrong results, recovery without a coordinator restart."""

import threading
import time

import numpy as np
import pytest
from clusterutil import make_corpus, query_pool, ranked, save_layout

from repro.cluster import (
    ClusterError,
    ClusterHarness,
    ShardUnavailable,
    split_layout,
)
from repro.index import open_index

DIM = 16
N_SHARDS = 4
N_SERVERS = 2


@pytest.fixture()
def cluster(tmp_path):
    keys, vectors = make_corpus(n=80, dim=DIM, seed=13)
    local_path = save_layout(tmp_path, keys, vectors, N_SHARDS, seed=13)
    paths = split_layout(local_path, tmp_path / "split", N_SERVERS)
    with ClusterHarness(paths) as harness:
        yield harness, open_index(local_path, mmap=True), vectors


def test_dead_shard_is_one_clear_error(cluster):
    harness, local, vectors = cluster
    remote = harness.connect(retries=1, backoff=0.01, timeout=5.0)
    matrix = query_pool(vectors)[:2]
    assert [ranked(h) for h in remote.query_many(matrix, k=5)] == \
           [ranked(h) for h in local.query_many(matrix, k=5)]
    harness.stop_shard(1)
    with pytest.raises(ShardUnavailable) as excinfo:
        remote.query_many(matrix, k=5)
    # The error names the shard and is the serving layer's 503.
    assert str(harness.topology.shards[1]) in str(excinfo.value)
    assert excinfo.value.http_status == 503


def test_recovery_needs_no_coordinator_restart(cluster):
    harness, local, vectors = cluster
    remote = harness.connect(retries=1, backoff=0.01, timeout=5.0)
    matrix = query_pool(vectors)[:3]
    expected = [ranked(h) for h in local.query_many(matrix, k=6)]
    assert [ranked(h) for h in remote.query_many(matrix, k=6)] == expected
    harness.stop_shard(0)
    with pytest.raises((ShardUnavailable, ClusterError)):
        remote.query_many(matrix, k=6)
    harness.start_shard(0)  # same port — topology unchanged
    assert [ranked(h) for h in remote.query_many(matrix, k=6)] == expected


def test_retries_ride_out_a_fast_restart(cluster):
    """With enough retry budget, a restart that completes inside the
    backoff window is invisible to the caller."""
    harness, local, vectors = cluster
    remote = harness.connect(retries=8, backoff=0.05, timeout=5.0)
    matrix = query_pool(vectors)[:2]
    expected = [ranked(h) for h in local.query_many(matrix, k=5)]
    harness.stop_shard(1)

    def resurrect():
        time.sleep(0.15)
        harness.start_shard(1)

    thread = threading.Thread(target=resurrect)
    thread.start()
    try:
        assert [ranked(h) for h in remote.query_many(matrix, k=5)] == expected
    finally:
        thread.join()


def test_soak_zero_wrong_results_through_restart(cluster):
    """Concurrent clients during a kill + restart: every success is
    bit-equal to local, every failure is a clean cluster error."""
    harness, local, vectors = cluster
    remote = harness.connect(retries=2, backoff=0.02, timeout=5.0)
    pool = query_pool(vectors, n_fresh=4)
    expected = {k: [ranked(h) for h in local.query_many(pool, k=k)]
                for k in (1, 5, 9)}
    stop_workers = threading.Event()
    wrong: list = []
    unexpected: list = []
    successes = [0]
    failures = [0]
    lock = threading.Lock()

    def client(worker: int) -> None:
        rng = np.random.default_rng(worker)
        while not stop_workers.is_set():
            k = int(rng.choice([1, 5, 9]))
            rows = rng.integers(0, len(pool), size=int(rng.integers(1, 4)))
            try:
                served = remote.query_many(pool[rows], k=k)
            except (ShardUnavailable, ClusterError):
                with lock:
                    failures[0] += 1
                continue
            except Exception as error:  # noqa: BLE001 - recorded, asserted
                with lock:
                    unexpected.append(repr(error))
                continue
            for row, hits in zip(rows, served):
                if ranked(hits) != expected[k][row]:
                    with lock:
                        wrong.append((k, int(row)))
            with lock:
                successes[0] += 1

    workers = [threading.Thread(target=client, args=(w,)) for w in range(4)]
    for worker in workers:
        worker.start()
    try:
        time.sleep(0.3)
        harness.stop_shard(1)
        time.sleep(0.3)
        harness.start_shard(1)
        deadline = time.monotonic() + 10
        # Keep going until recovery is proven: a post-restart success.
        baseline = successes[0]
        while successes[0] <= baseline and time.monotonic() < deadline:
            time.sleep(0.05)
        time.sleep(0.2)
    finally:
        stop_workers.set()
        for worker in workers:
            worker.join(timeout=30)
    assert wrong == [], f"bit-wrong results under fault: {wrong[:5]}"
    assert unexpected == [], f"non-cluster errors leaked: {unexpected[:5]}"
    assert successes[0] > 0
    # Recovery without coordinator restart, post-soak.
    assert [ranked(h) for h in remote.query_many(pool[:2], k=5)] == \
           expected[5][:2]
