"""End-to-end cluster serving: the whole stack — shard servers,
coordinator, micro-batch dispatcher, retrieval server — over real
sockets, pinned to the local offline rankings; plus the CLI entry
points (`serve-shard`, `serve --cluster`) as real subprocesses."""

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest
from clusterutil import (
    get_json,
    make_corpus,
    post_json,
    query_pool,
    ranked,
    ranked_wire,
    save_layout,
)

from repro.cluster import ClusterHarness, split_layout
from repro.index import open_index
from repro.serve import ServerThread

DIM = 16
SRC = Path(__file__).resolve().parents[2] / "src"


def _subprocess_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = (f"{SRC}:{env['PYTHONPATH']}"
                         if env.get("PYTHONPATH") else str(SRC))
    return env


@pytest.fixture(scope="module")
def stack(tmp_path_factory):
    """Shard servers + coordinator + retrieval server, all in-process:
    (local index, harness, coordinator, server thread)."""
    tmp = tmp_path_factory.mktemp("cluster-e2e")
    keys, vectors = make_corpus(n=90, dim=DIM, seed=21)
    local_path = save_layout(tmp, keys, vectors, 4, seed=21)
    paths = split_layout(local_path, tmp / "split", 2)
    with ClusterHarness(paths) as harness:
        remote = harness.connect(retries=1, backoff=0.01, timeout=10.0)
        with ServerThread(remote, max_wait_ms=1.0) as server:
            yield (open_index(local_path, mmap=True), harness, remote,
                   server, vectors)


class TestServedCluster:
    def test_served_equals_offline_local(self, stack):
        local, _harness, _remote, server, vectors = stack
        matrix = query_pool(vectors)
        status, payload = post_json(server.port, "/query",
                                    {"vectors": matrix.tolist(), "k": 7})
        assert status == 200
        offline = local.query_many(matrix, k=7)
        for entry, hits in zip(payload["results"], offline):
            assert ranked_wire(entry["hits"]) == ranked(hits)

    def test_single_query_shape(self, stack):
        local, _harness, _remote, server, vectors = stack
        status, payload = post_json(
            server.port, "/query",
            {"vector": vectors[0].tolist(), "k": 3, "exclude": "t00000"})
        assert status == 200
        offline = local.query_many(vectors[0][None, :], k=3,
                                   excludes=["t00000"])[0]
        assert ranked_wire(payload["hits"]) == ranked(offline)

    def test_healthz_aggregates_cluster(self, stack):
        _local, harness, remote, server, _vectors = stack
        status, payload = get_json(server.port, "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        cluster = payload["cluster"]
        assert cluster["reachable"] == cluster["total"] == 2
        assert cluster["n_shards"] == 4
        addresses = {entry["address"] for entry in cluster["servers"]}
        assert addresses == {str(a) for a in harness.topology}
        for entry in cluster["servers"]:
            assert entry["ok"] is True
            assert entry["format_version"] == remote.format_version

    def test_healthz_degrades_when_a_shard_is_down(self, stack):
        _local, harness, _remote, server, vectors = stack
        harness.stop_shard(1)
        try:
            status, payload = get_json(server.port, "/healthz")
            assert status == 200
            assert payload["status"] == "degraded"
            cluster = payload["cluster"]
            assert cluster["reachable"] == 1 and cluster["total"] == 2
            down = [e for e in cluster["servers"] if not e["ok"]]
            assert len(down) == 1 and "error" in down[0]
            # Queries against the dead shard are one clean 503.
            q_status, q_payload = post_json(
                server.port, "/query",
                {"vector": vectors[0].tolist(), "k": 3})
            assert q_status == 503
            assert "error" in q_payload
        finally:
            harness.start_shard(1)
        status, payload = get_json(server.port, "/healthz")
        assert payload["status"] == "ok"

    def test_stats_shape(self, stack):
        _local, _harness, _remote, server, _vectors = stack
        status, payload = get_json(server.port, "/stats")
        assert status == 200
        assert "rejected" in payload["dispatcher"]
        assert "max_backlog" in payload["dispatcher"]


class TestCLI:
    @pytest.fixture(scope="class")
    def cli_cluster(self, tmp_path_factory):
        """Real `serve-shard` subprocesses + a real `serve --cluster`
        coordinator subprocess."""
        tmp = tmp_path_factory.mktemp("cli-cluster")
        keys, vectors = make_corpus(n=60, dim=DIM, seed=31)
        local_path = save_layout(tmp, keys, vectors, 2, seed=31)
        paths = split_layout(local_path, tmp / "split", 2)
        with ClusterHarness(paths, subprocesses=True) as harness:
            topology_path = harness.topology.save(tmp / "topology.json")
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro.cli", "serve",
                 "--cluster", str(topology_path), "--port", "0"],
                env=_subprocess_env(), stdout=subprocess.PIPE,
                stderr=subprocess.PIPE, text=True)
            banner = proc.stdout.readline()
            assert "http://" in banner, proc.stderr.read()
            port = int(banner.split("http://")[1].split()[0]
                       .rsplit(":", 1)[1])
            try:
                yield local_path, vectors, proc, port, banner
            finally:
                if proc.poll() is None:
                    proc.send_signal(signal.SIGTERM)
                    proc.communicate(timeout=30)

    def test_cli_serves_local_rankings(self, cli_cluster):
        local_path, vectors, _proc, port, banner = cli_cluster
        assert "distributed index" in banner
        local = open_index(local_path, mmap=True)
        matrix = query_pool(vectors)[:4]
        status, payload = post_json(port, "/query",
                                    {"vectors": matrix.tolist(), "k": 5})
        assert status == 200
        for entry, hits in zip(payload["results"],
                               local.query_many(matrix, k=5)):
            assert ranked_wire(entry["hits"]) == ranked(hits)

    def test_cli_healthz_sees_both_shards(self, cli_cluster):
        _path, _vectors, _proc, port, _banner = cli_cluster
        status, payload = get_json(port, "/healthz")
        assert status == 200
        assert payload["cluster"]["reachable"] == 2

    def test_cli_sigterm_drains_cleanly(self, cli_cluster):
        _path, _vectors, proc, _port, _banner = cli_cluster
        proc.send_signal(signal.SIGTERM)
        out, err = proc.communicate(timeout=30)
        assert proc.returncode == 0, err
        assert "Draining" in out


class TestCLIValidation:
    def _run(self, *argv):
        return subprocess.run(
            [sys.executable, "-m", "repro.cli", *argv],
            env=_subprocess_env(), capture_output=True, text=True,
            timeout=60)

    def test_serve_requires_exactly_one_target(self, tmp_path):
        result = self._run("serve")
        assert result.returncode == 2
        assert "exactly one target" in result.stderr
        topology = tmp_path / "t.json"
        topology.write_text(json.dumps(
            {"shards": [{"host": "h", "port": 1}]}))
        result = self._run("serve", "some/path", "--cluster", str(topology))
        assert result.returncode == 2
        assert "exactly one target" in result.stderr

    def test_serve_bad_backlog_exits_2(self, tmp_path):
        result = self._run("serve", "--cluster", "x.json",
                           "--max-backlog", "0")
        assert result.returncode == 2
        assert "max-backlog" in result.stderr

    def test_serve_missing_topology_exits_2(self, tmp_path):
        result = self._run("serve", "--cluster",
                           str(tmp_path / "absent.json"))
        assert result.returncode == 2
        assert "topology" in result.stderr

    def test_serve_unreachable_cluster_exits_2(self, tmp_path):
        topology = tmp_path / "t.json"
        topology.write_text(json.dumps(
            {"shards": [{"host": "127.0.0.1", "port": 1}]}))
        result = self._run("serve", "--cluster", str(topology))
        assert result.returncode == 2
        assert result.stderr.strip()

    def test_serve_shard_missing_layout_exits_2(self, tmp_path):
        result = self._run("serve-shard", str(tmp_path / "absent.npz"))
        assert result.returncode == 2

    def test_serve_shard_sigterm_drains_cleanly(self, tmp_path):
        keys, vectors = make_corpus(n=30, dim=DIM, seed=41)
        path = save_layout(tmp_path, keys, vectors, 1, seed=41)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve-shard", str(path),
             "--port", "0"],
            env=_subprocess_env(), stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, text=True)
        banner = proc.stdout.readline()
        assert "http://" in banner, proc.stderr.read()
        port = int(banner.split("http://")[1].split()[0].rsplit(":", 1)[1])
        status, payload = get_json(port, "/healthz")
        assert status == 200 and payload["status"] == "ok"
        proc.send_signal(signal.SIGTERM)
        out, err = proc.communicate(timeout=30)
        assert proc.returncode == 0, err
        assert "Draining" in out
