"""Metadata classifier tests: features, bi-GRU/CNN learning, heuristics."""

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.metadata import (
    MetadataClassifier,
    NUM_CELL_FEATURES,
    cell_features,
    is_metadata_line,
    label_grid_heuristic,
    labeled_lines_from_table,
    line_features,
    training_set_from_tables,
)
from repro.tables import figure1_table, table2_relational

CORPUS = load_dataset("cancerkg", n_tables=16, seed=12)


class TestFeatures:
    def test_cell_feature_dim(self):
        assert cell_features("20.3 months", 0.0).shape == (NUM_CELL_FEATURES,)

    def test_numeric_flag(self):
        assert cell_features("42", 0.0)[0] == 1.0
        assert cell_features("hello", 0.0)[0] == 0.0

    def test_unit_flag(self):
        assert cell_features("20.3 months", 0.0)[4] == 1.0

    def test_empty_flag(self):
        assert cell_features("", 0.0)[6] == 1.0

    def test_line_features_shape(self):
        f = line_features(["a", "b", "c"])
        assert f.shape == (3, NUM_CELL_FEATURES)

    def test_labeled_lines_balance(self):
        t = table2_relational()
        items = labeled_lines_from_table(t)
        labels = [l for _f, l, _o in items]
        assert labels.count(1) == 1          # one HMD level
        assert labels.count(0) == t.n_rows + t.n_cols

    def test_training_set_from_corpus(self):
        lines, labels = training_set_from_tables(CORPUS[:4])
        assert len(lines) == len(labels)
        assert set(labels) == {0, 1}


class TestHeuristics:
    def test_header_line_detected(self):
        assert is_metadata_line(["Name", "Age", "Job"])

    def test_numeric_line_rejected(self):
        assert not is_metadata_line(["1", "2", "3"])

    def test_empty_line_rejected(self):
        assert not is_metadata_line(["", "", ""])

    def test_repeated_values_rejected(self):
        assert not is_metadata_line(["x", "x", "x", "x"])

    def test_label_grid(self):
        grid = [
            ["Name", "Age", "Job"],
            ["Sam", "28", "Engineer"],
            ["Alice", "34", "Lawyer"],
        ]
        rows, cols = label_grid_heuristic(grid)
        assert rows == 1
        assert cols in (0, 1)  # 'Name' column is distinct strings


@pytest.mark.parametrize("architecture", ["bigru", "cnn"])
class TestClassifiers:
    def test_learns_to_separate(self, architecture):
        lines, labels = training_set_from_tables(CORPUS)
        clf = MetadataClassifier(architecture, hidden=12, seed=0)
        clf.fit(lines, labels, epochs=12, lr=2e-2)
        assert clf.accuracy(lines, labels) > 0.8

    def test_probabilities_bounded(self, architecture):
        lines, labels = training_set_from_tables(CORPUS[:3])
        clf = MetadataClassifier(architecture, hidden=8, seed=0)
        clf.fit(lines, labels, epochs=2)
        probs = clf.predict_proba(lines[:5])
        assert ((probs >= 0) & (probs <= 1)).all()

    def test_label_grid_predicts_headers(self, architecture):
        lines, labels = training_set_from_tables(CORPUS)
        clf = MetadataClassifier(architecture, hidden=12, seed=0)
        clf.fit(lines, labels, epochs=12, lr=2e-2)
        grid = [
            ["Treatment", "Overall Survival", "Response Rate"],
            ["chemotherapy", "15.1 months", "34 %"],
            ["ramucirumab", "20.3 months", "45 %"],
        ]
        rows, _cols = clf.label_grid(grid)
        assert rows == 1


class TestClassifierValidation:
    def test_unknown_architecture(self):
        with pytest.raises(ValueError):
            MetadataClassifier("transformer")

    def test_empty_training_rejected(self):
        clf = MetadataClassifier("bigru")
        with pytest.raises(ValueError):
            clf.fit([], [])

    def test_mismatched_lengths_rejected(self):
        clf = MetadataClassifier("bigru")
        with pytest.raises(ValueError):
            clf.fit([np.zeros((2, NUM_CELL_FEATURES))], [0, 1])
