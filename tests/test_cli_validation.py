"""Every count-flag exit-2 path in one parametrized table.

The positivity checks for ``--jobs``/``--workers``/``--shards``/``-k``
and friends used to be copy-pasted per subcommand; they now flow
through one ``_validate_counts`` helper in ``repro.cli``, so a new
flag (like ``serve --workers``) cannot drift in wording or exit code.
This table is the contract: flag, subcommand, message — all covered in
one place, including the several-bad-flags-at-once behaviour (every
message prints, one exit)."""

from __future__ import annotations

import pytest

from repro.cli import main

# Each case: (argv, expected stderr fragment).  Paths that do not
# exist are fine — count validation runs before any target is opened.
CASES = [
    # index build
    (["index", "build", "webtables", "--out", "x", "--workers", "0"],
     "--workers must be positive"),
    (["index", "build", "webtables", "--out", "x", "--workers", "-3"],
     "--workers must be positive"),
    (["index", "build", "webtables", "--out", "x", "--shards", "0"],
     "--shards must be at least 1"),
    (["index", "build", "webtables", "--out", "x", "--shards", "2",
      "--jobs", "0"],
     "--jobs must be positive"),
    # index query
    (["index", "query", "webtables", "--index", "x", "--k", "0"],
     "-k/--k must be at least 1"),
    (["index", "query", "webtables", "--index", "x", "--k", "-1"],
     "-k/--k must be at least 1"),
    (["index", "query", "webtables", "--index", "x", "--jobs", "0"],
     "--jobs must be positive"),
    (["index", "query", "webtables", "--index", "x", "--chunk", "0"],
     "--chunk must be at least 1"),
    # serve
    (["serve", "x", "--workers", "0"], "--workers must be positive"),
    (["serve", "x", "--workers", "-2"], "--workers must be positive"),
    (["serve", "x", "--jobs", "0"], "--jobs must be positive"),
    (["serve", "x", "--max-batch", "0"], "--max-batch must be at least 1"),
    (["serve", "x", "--max-open", "0"], "--max-open must be at least 1"),
    (["serve", "x", "--max-backlog", "0"],
     "--max-backlog must be at least 1"),
    (["serve", "x", "--quantized", "--overfetch", "0"],
     "--overfetch must be at least 1"),
    (["serve", "x", "--quantized", "--overfetch", "-2"],
     "--overfetch must be at least 1"),
    (["serve", "x", "--quantized", "--margin", "-1"],
     "--margin must be at least 0"),
]


@pytest.mark.parametrize("argv,fragment", CASES,
                         ids=[" ".join(argv) for argv, _ in CASES])
def test_count_flag_rejected_with_exit_2(argv, fragment, capsys):
    assert main(argv) == 2
    assert fragment in capsys.readouterr().err


def test_all_bad_flags_reported_in_one_pass(capsys):
    """Several bad counts on one command line: every message prints
    (an operator fixes them all in one edit), still one exit 2."""
    assert main(["serve", "x", "--workers", "0", "--jobs", "0",
                 "--max-batch", "0"]) == 2
    err = capsys.readouterr().err
    assert "--workers must be positive" in err
    assert "--jobs must be positive" in err
    assert "--max-batch must be at least 1" in err


def test_margin_zero_is_valid(tmp_path, capsys):
    """--margin floors at 0, not 1 (no extra shortlist slack is a
    legitimate setting): validation passes and the command fails later
    on the missing target, not the flag."""
    assert main(["serve", str(tmp_path / "missing.npz"),
                 "--quantized", "--margin", "0"]) == 2
    err = capsys.readouterr().err
    assert "--margin" not in err


def test_overfetch_without_quantized_is_rejected(capsys):
    assert main(["serve", "x", "--overfetch", "2"]) == 2
    assert "require --quantized" in capsys.readouterr().err


def test_valid_counts_pass_validation(tmp_path, capsys):
    """A positive count sails through validation and fails later (or
    not at all) for target reasons, proving the helper only rejects
    what it should — here the missing index path, not the flags."""
    assert main(["serve", str(tmp_path / "missing.npz"),
                 "--workers", "2", "--jobs", "1",
                 "--max-batch", "4"]) == 2
    err = capsys.readouterr().err
    assert "must be" not in err
    assert "no index" in err or "missing" in err
