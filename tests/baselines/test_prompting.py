"""Chain-of-Table prompting extension tests."""

import pytest

from repro.baselines import SimulatedLLM, llm_column_clustering
from repro.baselines.prompting import ChainOfTableLLM, OPERATIONS, _metadata_view, _shape_view, _value_view
from repro.datasets import load_dataset

CORPUS = load_dataset("cancerkg", n_tables=16, seed=9)


class TestViews:
    def test_metadata_view_drops_numbers(self):
        text = "overall survival 20.3 months response 45 %"
        view = _metadata_view(text)
        assert "20.3" not in view and "survival" in view

    def test_value_view_keeps_numbers(self):
        text = "overall survival 20.3 months response 45 %"
        view = _value_view(text)
        assert "20.3" in view and "survival" not in view

    def test_value_view_falls_back_when_no_numbers(self):
        assert _value_view("no digits here") == "no digits here"

    def test_shape_view_counts(self):
        view = _shape_view("12 20-30 45% 7")
        assert view.startswith("numbers")
        assert "pct1" in view

    def test_three_operations(self):
        assert len(OPERATIONS) == 3


class TestChainOfTable:
    def test_rank_is_permutation(self):
        cot = ChainOfTableLLM(SimulatedLLM("llama-2", seed=0))
        candidates = [f"table about topic {i} with {i * 7} rows"
                      for i in range(20)]
        order = cot.rank("table about topic 3 with 21 rows", candidates)
        assert sorted(order) == list(range(20))

    def test_name(self):
        cot = ChainOfTableLLM(SimulatedLLM("gpt-4", use_rag=True))
        assert cot.name == "gpt-4+RAG+CoT"

    def test_invalid_keep_fraction(self):
        with pytest.raises(ValueError):
            ChainOfTableLLM(SimulatedLLM("gpt-2"), keep_fraction=0.0)

    def test_small_pools_skip_pruning(self):
        cot = ChainOfTableLLM(SimulatedLLM("gpt-4"), min_pool=10)
        order = cot.rank("query text", ["a b", "c d", "e f"])
        assert sorted(order) == [0, 1, 2]

    def test_explain_shows_chain(self):
        cot = ChainOfTableLLM(SimulatedLLM("gpt-4"))
        chain = cot.explain("survival 20.3 months")
        assert [name for name, _v in chain] == [n for n, _f in OPERATIONS]

    def test_cot_helps_weak_model_on_cc(self):
        """The paper's future-work hypothesis: iterative table prompting
        improves a plain LLM's ranking quality."""
        plain = SimulatedLLM("llama-2", seed=0)
        cot = ChainOfTableLLM(SimulatedLLM("llama-2", seed=0))
        r_plain = llm_column_clustering(CORPUS, plain, max_queries=12)
        r_cot = llm_column_clustering(CORPUS, cot, max_queries=12)
        assert r_cot.map_at_k >= r_plain.map_at_k - 0.02
