"""Word2Vec and simulated LLM/RAG baseline tests."""

import numpy as np
import pytest

from repro.baselines import (
    LLM_PROFILES,
    SimulatedLLM,
    TfidfIndex,
    Word2Vec,
    llm_column_clustering,
    llm_table_clustering,
)
from repro.datasets import load_dataset

CORPUS_TEXTS = [
    "the drug ramucirumab improves overall survival in colon cancer",
    "ramucirumab treatment overall survival months colon cancer",
    "the vaccine moderna shows efficacy against covid infection",
    "moderna vaccine efficacy covid doses administered",
    "city population area elevation founded region",
    "largest cities population region area statistics",
] * 10


class TestWord2Vec:
    def test_training_builds_vocab_and_vectors(self):
        w2v = Word2Vec(dim=16, seed=0).train(CORPUS_TEXTS, epochs=1)
        assert len(w2v.vocab) > 10
        assert w2v.w_in.shape == (len(w2v.vocab), 16)
        assert w2v.train_seconds > 0

    def test_cooccurring_words_are_similar(self):
        w2v = Word2Vec(dim=24, window=3, seed=0).train(CORPUS_TEXTS, epochs=8)
        similar = [w for w, _s in w2v.most_similar("ramucirumab", k=8)]
        assert any(w in similar for w in ("survival", "colon", "cancer",
                                          "treatment", "overall"))

    def test_embed_text_averages(self):
        w2v = Word2Vec(dim=8, seed=0).train(CORPUS_TEXTS, epochs=1)
        v = w2v.embed_text("ramucirumab survival")
        expected = (w2v.vector("ramucirumab") + w2v.vector("survival")) / 2
        assert np.allclose(v, expected)

    def test_unknown_text_gives_zero(self):
        w2v = Word2Vec(dim=8, seed=0).train(CORPUS_TEXTS, epochs=1)
        assert np.allclose(w2v.embed_text("zzz qqq"), 0.0)
        assert w2v.vector("zzzz") is None

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            Word2Vec(dim=0)
        with pytest.raises(ValueError):
            Word2Vec().train([])

    def test_min_count_filters(self):
        w2v = Word2Vec(dim=8, min_count=100, seed=0)
        with pytest.raises(Exception):
            # Everything filtered -> no trainable sentences survive encoding.
            w2v.train(["one two three"])


class TestTfidf:
    def test_self_retrieval(self):
        docs = ["alpha beta gamma", "delta epsilon", "alpha alpha beta"]
        index = TfidfIndex(docs)
        assert index.retrieve("alpha beta gamma", k=1)[0] == 0

    def test_char_ngrams_catch_morphology(self):
        docs = ["vaccination campaign", "crime statistics"]
        word_index = TfidfIndex(docs, char_ngrams=False)
        char_index = TfidfIndex(docs, char_ngrams=True)
        # 'vaccinations' (plural) has no exact word match.
        assert char_index.scores("vaccinations")[0] > word_index.scores("vaccinations")[0]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TfidfIndex([])


class TestSimulatedLLM:
    def test_rank_is_permutation(self):
        llm = SimulatedLLM("gpt-4", seed=0)
        candidates = [f"document {i}" for i in range(15)]
        order = llm.rank("document 3", candidates)
        assert sorted(order) == list(range(15))

    def test_profiles_exist(self):
        assert set(LLM_PROFILES) == {"gpt-2", "llama-2", "gpt-3.5", "gpt-4"}
        assert "gpt-4" in LLM_PROFILES["gpt-4"].describe()

    def test_unknown_profile_rejected(self):
        with pytest.raises(KeyError):
            SimulatedLLM("gpt-17")

    def test_name_includes_rag(self):
        assert SimulatedLLM("gpt-4", use_rag=True).name == "gpt-4+RAG"
        assert SimulatedLLM("gpt-4").name == "gpt-4"

    def test_gpt4_rag_finds_exact_match_first(self):
        llm = SimulatedLLM("gpt-4", use_rag=True, seed=0)
        candidates = ["population of cities in texas",
                      "colon cancer treatment efficacy",
                      "vaccine efficacy against covid"]
        order = llm.rank("treatment efficacy for colon cancer", candidates)
        assert order[0] == 1


class TestLLMTasks:
    CORPUS = load_dataset("cancerkg", n_tables=16, seed=6)

    def test_cc_runs_and_is_bounded(self):
        llm = SimulatedLLM("gpt-4", use_rag=True, seed=0)
        result = llm_column_clustering(self.CORPUS, llm, max_queries=8)
        assert 0.0 <= result.map_at_k <= 1.0
        assert 0.0 <= result.mrr_at_k <= 1.0

    def test_rag_improves_weak_model(self):
        plain = SimulatedLLM("llama-2", use_rag=False, seed=0)
        ragged = SimulatedLLM("llama-2", use_rag=True, seed=0)
        r_plain = llm_column_clustering(self.CORPUS, plain, max_queries=12)
        r_rag = llm_column_clustering(self.CORPUS, ragged, max_queries=12)
        assert r_rag.map_at_k >= r_plain.map_at_k

    def test_gpt4_beats_gpt2(self):
        weak = SimulatedLLM("gpt-2", seed=0)
        strong = SimulatedLLM("gpt-4", use_rag=True, seed=0)
        r_weak = llm_column_clustering(self.CORPUS, weak, max_queries=12)
        r_strong = llm_column_clustering(self.CORPUS, strong, max_queries=12)
        assert r_strong.map_at_k > r_weak.map_at_k

    def test_tc_runs(self):
        llm = SimulatedLLM("gpt-4", use_rag=True, seed=0)
        result = llm_table_clustering(self.CORPUS, llm)
        assert result.n_queries >= 1
        assert 0.0 <= result.map_at_k <= 1.0
