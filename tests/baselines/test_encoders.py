"""Text-MLM (BioBERT-like), TUTA-like, and DITTO baselines."""

import numpy as np
import pytest

from repro.baselines import (
    BioBERTLike,
    DittoMatcher,
    TextMLM,
    TutaEmbedder,
    corpus_tuples,
    serialize_column,
    serialize_table,
    serialize_tuple,
)
from repro.datasets import generate_em_dataset, load_dataset
from repro.tables import figure1_table, table2_relational

CORPUS = load_dataset("cancerkg", n_tables=10, seed=8)
TEXTS = corpus_tuples(CORPUS)


class TestAdapters:
    def test_serialize_tuple_includes_vmd_label(self):
        t = figure1_table()
        text = serialize_tuple(t, 0)
        assert "Previously Untreated" in text
        assert "20.3 months" in text

    def test_serialize_column_includes_header(self):
        t = figure1_table()
        text = serialize_column(t, 1)
        assert "OS" in text and "months" in text

    def test_serialize_table_includes_caption(self):
        t = table2_relational()
        assert "Employees" in serialize_table(t)
        assert "Employees" not in serialize_table(t, include_caption=False)

    def test_corpus_tuples_counts(self):
        t = table2_relational()
        texts = corpus_tuples([t])
        assert len(texts) == 1 + t.n_rows  # header line + tuples
        with_captions = corpus_tuples([t], include_captions=True)
        assert len(with_captions) == len(texts) + 1


class TestTextMLM:
    def test_training_reduces_loss(self):
        model = TextMLM.train_on_texts(TEXTS[:40], steps=0, hidden=24,
                                       vocab_size=300, seed=0)
        losses = model.pretrain(TEXTS[:40], steps=30, batch_size=6, lr=3e-3)
        k = len(losses) // 4
        assert np.mean(losses[-k:]) < np.mean(losses[:k])

    def test_embed_text_shape_and_cache(self):
        model = TextMLM.train_on_texts(TEXTS[:20], steps=2, hidden=24,
                                       vocab_size=300)
        v1 = model.embed_text("overall survival")
        v2 = model.embed_text("overall survival")
        assert v1.shape == (24,)
        assert v1 is v2  # cached object

    def test_empty_corpus_rejected(self):
        model = TextMLM.train_on_texts(TEXTS[:5], steps=0, hidden=24,
                                       vocab_size=200)
        with pytest.raises(ValueError):
            model.pretrain(["", " "], steps=1)

    def test_biobert_from_tables(self):
        model = BioBERTLike.from_tables(CORPUS[:5], steps=2, hidden=24,
                                        vocab_size=300)
        assert model.embed_text("treatment").shape == (24,)


class TestTuta:
    @pytest.fixture(scope="class")
    def tuta(self):
        return TutaEmbedder.build(CORPUS[:6], steps=5, hidden=24,
                                  vocab_size=300, seed=0)

    def test_serialize_joint_sequence(self, tuta):
        arrays = tuta.serialize(figure1_table())
        assert len(arrays["token_ids"]) > 4
        kinds = {k for k, _r, _c in arrays["refs"]}
        # Joint context: metadata and data share one sequence.
        assert {"hmd", "vmd", "data"} <= kinds

    def test_tree_depths_assigned(self, tuta):
        arrays = tuta.serialize(figure1_table())
        assert arrays["depths"].max() >= 2

    def test_column_embedding(self, tuta):
        v = tuta.embed_column(figure1_table(), 1)
        assert v.shape == (24,)
        assert np.isfinite(v).all()

    def test_table_embedding(self, tuta):
        v = tuta.embed_table(figure1_table())
        assert v.shape == (24,)

    def test_text_embedding(self, tuta):
        v = tuta.embed_text("ramucirumab")
        assert v.shape == (24,)

    def test_pretrain_reduces_loss(self):
        tuta = TutaEmbedder.build(CORPUS[:6], steps=0, hidden=24,
                                  vocab_size=300, seed=0)
        losses = tuta.pretrain(CORPUS[:6], steps=25, lr=3e-3, seed=1)
        k = max(len(losses) // 4, 1)
        assert np.mean(losses[-k:]) < np.mean(losses[:k])


class TestDitto:
    def test_learns_easy_matching(self):
        pairs = generate_em_dataset("amazon-google", n_pairs=40, seed=0)
        train, test = pairs[:60], pairs[60:]
        matcher = DittoMatcher.build(train, hidden=24, vocab_size=400, seed=0)
        matcher.fit(train, epochs=10, batch_size=8, lr=1e-3)
        assert matcher.evaluate_f1(train) > 0.9
        assert matcher.evaluate_f1(test) > 0.6

    def test_predictions_binary(self):
        pairs = generate_em_dataset("abt-buy", n_pairs=10, seed=1)
        matcher = DittoMatcher.build(pairs, hidden=24, vocab_size=300, seed=0)
        predictions = matcher.predict(pairs)
        assert set(predictions) <= {0, 1}
        assert len(predictions) == len(pairs)
