"""Transformer encoder stack tests."""

import numpy as np

from repro.nn import Tensor, TransformerEncoder, TransformerEncoderLayer

RNG = np.random.default_rng(3)


class TestEncoderLayer:
    def test_preserves_shape(self):
        layer = TransformerEncoderLayer(12, 3, 24, rng=np.random.default_rng(0))
        out = layer(Tensor(RNG.standard_normal((2, 6, 12))))
        assert out.shape == (2, 6, 12)

    def test_mask_respected_through_residuals(self):
        layer = TransformerEncoderLayer(8, 2, 16, rng=np.random.default_rng(0))
        n = 5
        mask = np.ones((n, n), dtype=np.uint8)
        mask[:, 4] = 0
        mask[4, 4] = 1
        x1 = RNG.standard_normal((1, n, 8))
        x2 = x1.copy()
        x2[0, 4] += 5.0
        out1 = layer(Tensor(x1), mask).data
        out2 = layer(Tensor(x2), mask).data
        assert np.allclose(out1[0, :4], out2[0, :4], atol=1e-10)

    def test_deterministic_in_eval(self):
        layer = TransformerEncoderLayer(8, 2, 16, dropout=0.3,
                                        rng=np.random.default_rng(0))
        layer.eval()
        x = Tensor(RNG.standard_normal((1, 4, 8)))
        assert np.allclose(layer(x).data, layer(x).data)

    def test_dropout_changes_training_output(self):
        layer = TransformerEncoderLayer(8, 2, 16, dropout=0.5,
                                        rng=np.random.default_rng(0))
        layer.train()
        x = Tensor(RNG.standard_normal((1, 4, 8)))
        assert not np.allclose(layer(x).data, layer(x).data)


class TestEncoderStack:
    def test_layer_count(self):
        enc = TransformerEncoder(3, 8, 2, 16, rng=np.random.default_rng(0))
        assert len(enc.layers) == 3
        assert enc.num_layers == 3

    def test_forward_and_backward(self):
        enc = TransformerEncoder(2, 8, 2, 16, rng=np.random.default_rng(0))
        x = Tensor(RNG.standard_normal((2, 5, 8)), requires_grad=True)
        (enc(x) ** 2.0).sum().backward()
        assert x.grad is not None
        assert np.isfinite(x.grad).all()
        for _name, p in enc.named_parameters():
            assert p.grad is not None

    def test_differs_from_single_layer(self):
        rng = np.random.default_rng(0)
        enc1 = TransformerEncoder(1, 8, 2, 16, rng=rng)
        enc2 = TransformerEncoder(2, 8, 2, 16, rng=rng)
        x = Tensor(RNG.standard_normal((1, 4, 8)))
        assert not np.allclose(enc1(x).data, enc2(x).data)

    def test_output_finite_with_mask(self):
        enc = TransformerEncoder(2, 8, 2, 16, rng=np.random.default_rng(0))
        mask = np.eye(6, dtype=np.uint8)  # only self-attention
        out = enc(Tensor(RNG.standard_normal((1, 6, 8))), mask)
        assert np.isfinite(out.data).all()
