"""Autograd engine tests: every op's gradient is checked numerically."""

import numpy as np
import pytest

from repro.nn.tensor import (
    Tensor,
    _unbroadcast,
    concatenate,
    embedding_lookup,
    ones,
    stack,
    where,
    zeros,
)

RNG = np.random.default_rng(42)


def numeric_grad(fn, x: np.ndarray, index, eps: float = 1e-6) -> float:
    xp, xm = x.copy(), x.copy()
    xp[index] += eps
    xm[index] -= eps
    return (fn(xp) - fn(xm)) / (2 * eps)


def check_grad(build, shape, spots=3, tol=1e-4):
    """Compare analytic vs central-difference gradients at random spots."""
    x = RNG.standard_normal(shape)
    t = Tensor(x, requires_grad=True)
    out = build(t)
    out.sum().backward()
    analytic = t.grad

    def scalar(arr):
        return float(build(Tensor(arr)).sum().data)

    for _ in range(spots):
        idx = tuple(int(RNG.integers(s)) for s in shape)
        expected = numeric_grad(scalar, x, idx)
        assert analytic[idx] == pytest.approx(expected, abs=tol), build


class TestElementwiseGradients:
    def test_add(self):
        check_grad(lambda t: t + 3.0, (4, 3))

    def test_mul(self):
        check_grad(lambda t: t * 2.5, (4, 3))

    def test_sub(self):
        check_grad(lambda t: t - 1.5, (2, 5))

    def test_neg(self):
        check_grad(lambda t: -t, (3,))

    def test_div(self):
        check_grad(lambda t: t / 4.0, (3, 2))

    def test_rdiv(self):
        x = np.abs(RNG.standard_normal((3, 3))) + 1.0
        t = Tensor(x, requires_grad=True)
        (2.0 / t).sum().backward()
        assert np.allclose(t.grad, -2.0 / x**2)

    def test_pow(self):
        check_grad(lambda t: t ** 3.0, (4,))

    def test_exp(self):
        check_grad(lambda t: t.exp(), (3, 3))

    def test_log(self):
        x = np.abs(RNG.standard_normal((4,))) + 0.5
        t = Tensor(x, requires_grad=True)
        t.log().sum().backward()
        assert np.allclose(t.grad, 1.0 / x)

    def test_tanh(self):
        check_grad(lambda t: t.tanh(), (5,))

    def test_sigmoid(self):
        check_grad(lambda t: t.sigmoid(), (5,))

    def test_relu(self):
        x = np.array([-2.0, -0.5, 0.5, 2.0])
        t = Tensor(x, requires_grad=True)
        t.relu().sum().backward()
        assert np.allclose(t.grad, [0, 0, 1, 1])

    def test_gelu(self):
        check_grad(lambda t: t.gelu(), (6,))

    def test_sqrt(self):
        x = np.abs(RNG.standard_normal((4,))) + 1.0
        t = Tensor(x, requires_grad=True)
        t.sqrt().sum().backward()
        assert np.allclose(t.grad, 0.5 / np.sqrt(x))


class TestMatmulGradients:
    def test_matmul_2d(self):
        a = Tensor(RNG.standard_normal((3, 4)), requires_grad=True)
        b = Tensor(RNG.standard_normal((4, 5)), requires_grad=True)
        (a @ b).sum().backward()
        assert np.allclose(a.grad, np.ones((3, 5)) @ b.data.T)
        assert np.allclose(b.grad, a.data.T @ np.ones((3, 5)))

    def test_matmul_batched(self):
        a = Tensor(RNG.standard_normal((2, 3, 4)), requires_grad=True)
        b = Tensor(RNG.standard_normal((2, 4, 5)), requires_grad=True)
        out = a @ b
        assert out.shape == (2, 3, 5)
        out.sum().backward()
        assert a.grad.shape == (2, 3, 4)
        assert b.grad.shape == (2, 4, 5)

    def test_matmul_broadcast_weights(self):
        # (B, n, d) @ (d, k): weight gradient sums over the batch.
        x = Tensor(RNG.standard_normal((2, 3, 4)), requires_grad=True)
        w = Tensor(RNG.standard_normal((4, 5)), requires_grad=True)
        (x @ w).sum().backward()
        assert w.grad.shape == (4, 5)
        expected = sum(x.data[b].T @ np.ones((3, 5)) for b in range(2))
        assert np.allclose(w.grad, expected)

    def test_matmul_numeric(self):
        w = Tensor(RNG.standard_normal((4, 2)))
        check_grad(lambda t: t @ w, (3, 4))


class TestBroadcasting:
    def test_unbroadcast_shapes(self):
        grad = np.ones((2, 3, 4))
        assert _unbroadcast(grad, (3, 4)).shape == (3, 4)
        assert _unbroadcast(grad, (1, 4)).shape == (1, 4)
        assert _unbroadcast(grad, (2, 1, 1)).shape == (2, 1, 1)

    def test_unbroadcast_preserves_total(self):
        grad = RNG.standard_normal((2, 3, 4))
        reduced = _unbroadcast(grad, (3, 1))
        assert reduced.sum() == pytest.approx(grad.sum())

    def test_add_bias_broadcast(self):
        x = Tensor(RNG.standard_normal((2, 3, 4)), requires_grad=True)
        b = Tensor(RNG.standard_normal((4,)), requires_grad=True)
        (x + b).sum().backward()
        assert b.grad.shape == (4,)
        assert np.allclose(b.grad, np.full(4, 6.0))

    def test_mul_scalar_tensor(self):
        x = Tensor(RNG.standard_normal((3, 2)), requires_grad=True)
        s = Tensor(2.0, requires_grad=True)
        (x * s).sum().backward()
        assert s.grad.shape == ()
        assert s.grad.item() == pytest.approx(float(x.data.sum()))


class TestReductions:
    def test_sum_all(self):
        check_grad(lambda t: t.sum(), (3, 4))

    def test_sum_axis(self):
        x = Tensor(RNG.standard_normal((3, 4)), requires_grad=True)
        x.sum(axis=0).sum().backward()
        assert np.allclose(x.grad, np.ones((3, 4)))

    def test_sum_keepdims(self):
        x = Tensor(RNG.standard_normal((3, 4)), requires_grad=True)
        out = x.sum(axis=1, keepdims=True)
        assert out.shape == (3, 1)
        out.sum().backward()
        assert np.allclose(x.grad, 1.0)

    def test_mean(self):
        x = Tensor(RNG.standard_normal((4, 5)), requires_grad=True)
        x.mean().backward()
        assert np.allclose(x.grad, 1.0 / 20)

    def test_mean_axis(self):
        x = Tensor(RNG.standard_normal((4, 5)), requires_grad=True)
        x.mean(axis=1).sum().backward()
        assert np.allclose(x.grad, 1.0 / 5)

    def test_max_routes_gradient(self):
        x = Tensor(np.array([[1.0, 5.0, 2.0], [7.0, 0.0, 3.0]]), requires_grad=True)
        x.max(axis=1).sum().backward()
        assert np.allclose(x.grad, [[0, 1, 0], [1, 0, 0]])

    def test_max_splits_ties(self):
        x = Tensor(np.array([2.0, 2.0, 1.0]), requires_grad=True)
        x.max().backward()
        assert x.grad.sum() == pytest.approx(1.0)
        assert np.allclose(x.grad, [0.5, 0.5, 0.0])


class TestShapes:
    def test_reshape(self):
        x = Tensor(RNG.standard_normal((2, 6)), requires_grad=True)
        out = x.reshape(3, 4)
        assert out.shape == (3, 4)
        (out * out).sum().backward()
        assert x.grad.shape == (2, 6)

    def test_transpose(self):
        x = Tensor(RNG.standard_normal((2, 3, 4)), requires_grad=True)
        out = x.transpose(0, 2, 1)
        assert out.shape == (2, 4, 3)
        out.sum().backward()
        assert x.grad.shape == (2, 3, 4)

    def test_transpose_default_reverses(self):
        x = Tensor(RNG.standard_normal((2, 3)))
        assert x.transpose().shape == (3, 2)

    def test_swapaxes(self):
        x = Tensor(RNG.standard_normal((2, 3, 4)))
        assert x.swapaxes(-1, -2).shape == (2, 4, 3)

    def test_getitem_slice(self):
        x = Tensor(RNG.standard_normal((4, 5)), requires_grad=True)
        x[1:3, :].sum().backward()
        expected = np.zeros((4, 5))
        expected[1:3] = 1.0
        assert np.allclose(x.grad, expected)

    def test_getitem_fancy_accumulates(self):
        x = Tensor(RNG.standard_normal((4,)), requires_grad=True)
        idx = np.array([0, 0, 2])
        x[idx].sum().backward()
        assert np.allclose(x.grad, [2.0, 0.0, 1.0, 0.0])


class TestPrimitives:
    def test_softmax_rows_sum_to_one(self):
        x = Tensor(RNG.standard_normal((3, 7)))
        out = x.softmax(axis=-1)
        assert np.allclose(out.data.sum(axis=-1), 1.0)

    def test_softmax_gradient(self):
        check_grad(lambda t: (t.softmax(axis=-1) * t.softmax(axis=-1)), (2, 5))

    def test_log_softmax_matches_log_of_softmax(self):
        x = Tensor(RNG.standard_normal((4, 6)))
        assert np.allclose(x.log_softmax().data, np.log(x.softmax().data))

    def test_log_softmax_gradient(self):
        check_grad(lambda t: t.log_softmax(axis=-1) * 0.5, (2, 4))

    def test_softmax_stability_large_values(self):
        x = Tensor(np.array([[1000.0, 1000.0, 999.0]]))
        out = x.softmax(axis=-1).data
        assert np.isfinite(out).all()
        assert out.sum() == pytest.approx(1.0)

    def test_masked_fill(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        mask = np.array([[True, False], [False, True]])
        out = x.masked_fill(mask, -9.0)
        assert np.allclose(out.data, [[-9, 1], [1, -9]])
        out.sum().backward()
        assert np.allclose(x.grad, [[0, 1], [1, 0]])

    def test_where(self):
        a = Tensor(np.ones(4), requires_grad=True)
        b = Tensor(np.zeros(4), requires_grad=True)
        cond = np.array([True, False, True, False])
        where(cond, a, b).sum().backward()
        assert np.allclose(a.grad, [1, 0, 1, 0])
        assert np.allclose(b.grad, [0, 1, 0, 1])

    def test_concatenate_routes_gradient(self):
        a = Tensor(RNG.standard_normal((2, 3)), requires_grad=True)
        b = Tensor(RNG.standard_normal((2, 2)), requires_grad=True)
        out = concatenate([a, b], axis=1)
        assert out.shape == (2, 5)
        (out * out).sum().backward()
        assert np.allclose(a.grad, 2 * a.data)
        assert np.allclose(b.grad, 2 * b.data)

    def test_stack(self):
        a = Tensor(RNG.standard_normal((3,)), requires_grad=True)
        b = Tensor(RNG.standard_normal((3,)), requires_grad=True)
        out = stack([a, b], axis=0)
        assert out.shape == (2, 3)
        out.sum().backward()
        assert np.allclose(a.grad, 1.0)

    def test_embedding_lookup_scatter_add(self):
        w = Tensor(RNG.standard_normal((5, 3)), requires_grad=True)
        idx = np.array([[1, 1], [4, 0]])
        out = embedding_lookup(w, idx)
        assert out.shape == (2, 2, 3)
        out.sum().backward()
        assert np.allclose(w.grad[1], 2.0)
        assert np.allclose(w.grad[4], 1.0)
        assert np.allclose(w.grad[2], 0.0)


class TestGraphMechanics:
    def test_grad_accumulates_across_uses(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * 3.0 + x * 4.0
        y.backward()
        assert x.grad.item() == pytest.approx(7.0)

    def test_diamond_graph(self):
        x = Tensor(np.array([3.0]), requires_grad=True)
        a = x * 2.0
        b = x + 1.0
        (a * b).backward()  # d/dx (2x (x+1)) = 4x + 2
        assert x.grad.item() == pytest.approx(14.0)

    def test_backward_on_nonscalar_requires_grad_arg(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_backward_without_requires_grad_raises(self):
        with pytest.raises(RuntimeError):
            Tensor(np.ones(2)).backward(np.ones(2))

    def test_zero_grad(self):
        x = Tensor(np.ones(2), requires_grad=True)
        x.sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_detach_stops_gradient(self):
        x = Tensor(np.ones(2), requires_grad=True)
        y = x.detach() * 5.0
        assert not y.requires_grad

    def test_no_grad_tracking_for_plain_tensors(self):
        out = Tensor(np.ones(2)) + Tensor(np.ones(2))
        assert not out.requires_grad
        assert out._backward is None

    def test_helpers(self):
        assert zeros((2, 2)).data.sum() == 0
        assert ones((2, 2)).data.sum() == 4
        assert Tensor(np.float64(5)).item() == 5.0

    def test_tensor_exponent_rejected(self):
        with pytest.raises(TypeError):
            Tensor(np.ones(2)) ** Tensor(np.ones(2))
