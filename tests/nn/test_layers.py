"""Module system and basic layer tests."""

import numpy as np
import pytest

from repro.nn import (
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    Module,
    ModuleList,
    Parameter,
    Sequential,
    Tensor,
)

RNG = np.random.default_rng(0)


class ToyModel(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = Linear(4, 8, rng=RNG)
        self.fc2 = Linear(8, 2, rng=RNG)
        self.scale = Parameter(np.ones(1))

    def forward(self, x):
        return self.fc2(self.fc1(x).relu()) * self.scale


class TestModule:
    def test_parameter_discovery_recursive(self):
        model = ToyModel()
        names = [n for n, _p in model.named_parameters()]
        assert "fc1.weight" in names and "fc2.bias" in names and "scale" in names

    def test_num_parameters(self):
        model = ToyModel()
        assert model.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2 + 1

    def test_state_dict_roundtrip(self):
        model = ToyModel()
        state = model.state_dict()
        other = ToyModel()
        other.load_state_dict(state)
        x = Tensor(RNG.standard_normal((3, 4)))
        assert np.allclose(model(x).data, other(x).data)

    def test_load_state_dict_missing_key_raises(self):
        model = ToyModel()
        state = model.state_dict()
        state.pop("scale")
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_load_state_dict_shape_mismatch_raises(self):
        model = ToyModel()
        state = model.state_dict()
        state["scale"] = np.ones(7)
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_zero_grad_clears_all(self):
        model = ToyModel()
        out = model(Tensor(RNG.standard_normal((2, 4))))
        out.sum().backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())

    def test_train_eval_propagates(self):
        model = Sequential(Linear(2, 2), Dropout(0.5))
        model.eval()
        assert all(not m.training for m in model.layers)
        model.train()
        assert all(m.training for m in model.layers)

    def test_module_list(self):
        layers = ModuleList([Linear(2, 2), Linear(2, 2)])
        assert len(layers) == 2
        assert isinstance(layers[1], Linear)
        assert len(list(layers)) == 2


class TestLinear:
    def test_shapes(self):
        layer = Linear(5, 3, rng=RNG)
        out = layer(Tensor(RNG.standard_normal((7, 5))))
        assert out.shape == (7, 3)

    def test_batched_input(self):
        layer = Linear(5, 3, rng=RNG)
        out = layer(Tensor(RNG.standard_normal((2, 7, 5))))
        assert out.shape == (2, 7, 3)

    def test_no_bias(self):
        layer = Linear(4, 2, bias=False, rng=RNG)
        assert layer.bias is None
        zero = layer(Tensor(np.zeros((1, 4))))
        assert np.allclose(zero.data, 0.0)

    def test_affine_math(self):
        layer = Linear(2, 2, rng=RNG)
        layer.weight.data = np.array([[1.0, 2.0], [3.0, 4.0]])
        layer.bias.data = np.array([10.0, 20.0])
        out = layer(Tensor(np.array([[1.0, 1.0]])))
        assert np.allclose(out.data, [[14.0, 26.0]])


class TestEmbedding:
    def test_lookup(self):
        emb = Embedding(10, 4, rng=RNG)
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)
        assert np.allclose(out.data[0, 0], emb.weight.data[1])

    def test_out_of_range_raises(self):
        emb = Embedding(5, 4, rng=RNG)
        with pytest.raises(IndexError):
            emb(np.array([5]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))

    def test_gradient_accumulates_on_repeats(self):
        emb = Embedding(5, 3, rng=RNG)
        out = emb(np.array([2, 2, 2]))
        out.sum().backward()
        assert np.allclose(emb.weight.grad[2], 3.0)


class TestLayerNorm:
    def test_output_statistics(self):
        norm = LayerNorm(16)
        out = norm(Tensor(RNG.standard_normal((4, 16)) * 10 + 5))
        assert np.allclose(out.data.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.data.std(axis=-1), 1.0, atol=1e-2)

    def test_gamma_beta_applied(self):
        norm = LayerNorm(4)
        norm.gamma.data = np.full(4, 2.0)
        norm.beta.data = np.full(4, 7.0)
        out = norm(Tensor(RNG.standard_normal((2, 4))))
        assert out.data.mean() == pytest.approx(7.0, abs=1e-6)

    def test_gradient_flows(self):
        norm = LayerNorm(8)
        x = Tensor(RNG.standard_normal((3, 8)), requires_grad=True)
        (norm(x) ** 2.0).sum().backward()
        assert x.grad is not None and np.isfinite(x.grad).all()


class TestDropout:
    def test_eval_is_identity(self):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        drop.eval()
        x = Tensor(RNG.standard_normal((5, 5)))
        assert np.allclose(drop(x).data, x.data)

    def test_training_scales_kept_units(self):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones((100, 100)))
        out = drop(x).data
        kept = out[out != 0]
        assert np.allclose(kept, 2.0)
        assert 0.35 < (out != 0).mean() < 0.65

    def test_p_zero_is_identity_in_training(self):
        drop = Dropout(0.0)
        x = Tensor(RNG.standard_normal((3, 3)))
        assert np.allclose(drop(x).data, x.data)

    def test_invalid_p_raises(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)
