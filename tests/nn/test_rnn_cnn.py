"""GRU / BiGRU / Conv1d substrate tests."""

import numpy as np
import pytest

from repro.nn import GRU, Adam, BiGRU, Conv1d, GlobalAvgPool1d, GlobalMaxPool1d, GRUCell, Linear, Tensor, binary_cross_entropy_with_logits

RNG = np.random.default_rng(11)


class TestGRU:
    def test_cell_shape(self):
        cell = GRUCell(4, 6, rng=np.random.default_rng(0))
        h = cell(Tensor(RNG.standard_normal((3, 4))), Tensor(np.zeros((3, 6))))
        assert h.shape == (3, 6)

    def test_sequence_output_shape(self):
        gru = GRU(4, 6, rng=np.random.default_rng(0))
        out = gru(Tensor(RNG.standard_normal((2, 5, 4))))
        assert out.shape == (2, 5, 6)

    def test_rejects_2d(self):
        gru = GRU(4, 6)
        with pytest.raises(ValueError):
            gru(Tensor(RNG.standard_normal((5, 4))))

    def test_reverse_differs(self):
        gru = GRU(4, 6, rng=np.random.default_rng(0))
        x = Tensor(RNG.standard_normal((1, 5, 4)))
        assert not np.allclose(gru(x).data, gru(x, reverse=True).data)

    def test_last_state(self):
        gru = GRU(4, 6, rng=np.random.default_rng(0))
        x = Tensor(RNG.standard_normal((2, 5, 4)))
        assert np.allclose(gru.last_state(x).data, gru(x).data[:, -1, :])

    def test_gradient_flows_through_time(self):
        gru = GRU(4, 6, rng=np.random.default_rng(0))
        x = Tensor(RNG.standard_normal((1, 6, 4)), requires_grad=True)
        (gru(x)[:, -1, :] ** 2.0).sum().backward()
        # The first timestep influences the last state.
        assert np.abs(x.grad[0, 0]).max() > 0

    def test_bigru_concatenates(self):
        bigru = BiGRU(4, 6, rng=np.random.default_rng(0))
        out = bigru(Tensor(RNG.standard_normal((2, 5, 4))))
        assert out.shape == (2, 5, 12)

    def test_bigru_pooled(self):
        bigru = BiGRU(4, 6, rng=np.random.default_rng(0))
        out = bigru.pooled(Tensor(RNG.standard_normal((3, 5, 4))))
        assert out.shape == (3, 12)

    def test_gru_learns_parity_of_first_token(self):
        """Trainability check: recover the first timestep's sign."""
        rng = np.random.default_rng(0)
        gru = GRU(2, 8, rng=rng)
        head = Linear(8, 1, rng=rng)
        params = gru.parameters() + head.parameters()
        opt = Adam(params, lr=0.02)
        X = rng.standard_normal((40, 4, 2))
        y = (X[:, 0, 0] > 0).astype(float)
        for _ in range(60):
            logits = head(gru.last_state(Tensor(X))).reshape(-1)
            loss = binary_cross_entropy_with_logits(logits, y)
            opt.zero_grad()
            loss.backward()
            opt.step()
        preds = (head(gru.last_state(Tensor(X))).data.reshape(-1) > 0)
        assert (preds == y.astype(bool)).mean() > 0.9


class TestConv1d:
    def test_same_padding_shape(self):
        conv = Conv1d(4, 6, 3, rng=np.random.default_rng(0))
        out = conv(Tensor(RNG.standard_normal((2, 7, 4))))
        assert out.shape == (2, 7, 6)

    def test_even_kernel_rejected(self):
        with pytest.raises(ValueError):
            Conv1d(4, 6, 2)

    def test_channel_mismatch_rejected(self):
        conv = Conv1d(4, 6, 3)
        with pytest.raises(ValueError):
            conv(Tensor(RNG.standard_normal((1, 5, 3))))

    def test_known_kernel_output(self):
        """A centered averaging kernel reproduces a moving average."""
        conv = Conv1d(1, 1, 3, rng=np.random.default_rng(0))
        conv.weight.data = np.full((3, 1), 1.0 / 3.0)
        conv.bias.data = np.zeros(1)
        x = np.arange(5, dtype=float).reshape(1, 5, 1)
        out = conv(Tensor(x)).data[0, :, 0]
        # Interior positions: exact moving average; borders zero-padded.
        assert out[2] == pytest.approx((1 + 2 + 3) / 3)
        assert out[0] == pytest.approx((0 + 0 + 1) / 3)

    def test_gradient_flows(self):
        conv = Conv1d(3, 4, 3, rng=np.random.default_rng(0))
        x = Tensor(RNG.standard_normal((2, 6, 3)), requires_grad=True)
        (conv(x) ** 2.0).sum().backward()
        assert x.grad is not None
        assert conv.weight.grad is not None

    def test_pools(self):
        x = Tensor(RNG.standard_normal((2, 5, 3)))
        assert GlobalMaxPool1d()(x).shape == (2, 3)
        assert GlobalAvgPool1d()(x).shape == (2, 3)
        assert np.allclose(GlobalMaxPool1d()(x).data, x.data.max(axis=1))
        assert np.allclose(GlobalAvgPool1d()(x).data, x.data.mean(axis=1))
