"""Checkpoint save/load tests."""

import numpy as np
import pytest

from repro.nn import Linear, Sequential, Tensor, load_checkpoint, save_checkpoint


def make_model(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential(Linear(4, 8, rng=rng), Linear(8, 2, rng=rng))


class TestCheckpoints:
    def test_roundtrip(self, tmp_path):
        model = make_model(seed=1)
        path = tmp_path / "model.npz"
        save_checkpoint(model, path, meta={"note": "hello"})
        other = make_model(seed=2)
        x = Tensor(np.random.default_rng(0).standard_normal((3, 4)))
        assert not np.allclose(model(x).data, other(x).data)
        meta = load_checkpoint(other, path)
        assert meta == {"note": "hello"}
        assert np.allclose(model(x).data, other(x).data)

    def test_meta_optional(self, tmp_path):
        model = make_model()
        path = tmp_path / "m.npz"
        save_checkpoint(model, path)
        assert load_checkpoint(make_model(), path) == {}

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(make_model(), tmp_path / "nope.npz")

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "model.npz"
        save_checkpoint(make_model(), path)
        assert path.exists()

    def test_architecture_mismatch_raises(self, tmp_path):
        path = tmp_path / "m.npz"
        save_checkpoint(make_model(), path)
        rng = np.random.default_rng(0)
        wrong = Sequential(Linear(4, 8, rng=rng))
        with pytest.raises(KeyError):
            load_checkpoint(wrong, path)
