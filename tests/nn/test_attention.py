"""Multi-head attention and visibility-mask behaviour."""

import numpy as np
import pytest

from repro.nn import MultiHeadSelfAttention, Tensor

RNG = np.random.default_rng(7)


def make_attn(hidden=8, heads=2):
    return MultiHeadSelfAttention(hidden, heads, rng=np.random.default_rng(1))


class TestShapes:
    def test_output_shape(self):
        attn = make_attn()
        out = attn(Tensor(RNG.standard_normal((3, 5, 8))))
        assert out.shape == (3, 5, 8)

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError):
            make_attn()(Tensor(RNG.standard_normal((5, 8))))

    def test_hidden_must_divide_heads(self):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(10, 3)

    def test_bad_mask_shape_raises(self):
        attn = make_attn()
        x = Tensor(RNG.standard_normal((2, 4, 8)))
        with pytest.raises(ValueError):
            attn(x, np.ones((3, 3)))


class TestMasking:
    def test_full_mask_equals_no_mask(self):
        attn = make_attn()
        x = Tensor(RNG.standard_normal((2, 4, 8)))
        assert np.allclose(attn(x).data, attn(x, np.ones((4, 4))).data)

    def test_masked_token_has_no_influence(self):
        """Changing a token no other token can see leaves their outputs
        unchanged."""
        attn = make_attn()
        n = 4
        mask = np.ones((n, n), dtype=np.uint8)
        mask[:, 3] = 0       # nobody sees token 3
        mask[3, 3] = 1       # except itself
        x1 = RNG.standard_normal((1, n, 8))
        x2 = x1.copy()
        x2[0, 3] += 10.0
        out1 = attn(Tensor(x1), mask).data
        out2 = attn(Tensor(x2), mask).data
        assert np.allclose(out1[0, :3], out2[0, :3], atol=1e-10)
        assert not np.allclose(out1[0, 3], out2[0, 3])

    def test_visible_token_does_influence(self):
        attn = make_attn()
        x1 = RNG.standard_normal((1, 4, 8))
        x2 = x1.copy()
        x2[0, 3] += 10.0
        out1 = attn(Tensor(x1)).data
        out2 = attn(Tensor(x2)).data
        assert not np.allclose(out1[0, 0], out2[0, 0])

    def test_all_blocked_row_raises(self):
        attn = make_attn()
        mask = np.ones((4, 4))
        mask[2, :] = 0
        with pytest.raises(ValueError):
            attn(Tensor(RNG.standard_normal((1, 4, 8))), mask)

    def test_per_batch_masks(self):
        attn = make_attn()
        x = RNG.standard_normal((2, 3, 8))
        masks = np.ones((2, 3, 3), dtype=np.uint8)
        masks[1, 0, 2] = 0
        out_batch = attn(Tensor(x), masks).data
        out_first = attn(Tensor(x[:1]), masks[0]).data
        assert np.allclose(out_batch[0], out_first[0])


class TestGradients:
    def test_gradient_matches_numeric(self):
        attn = make_attn()
        x = RNG.standard_normal((1, 3, 8))
        mask = np.ones((3, 3))
        mask[0, 2] = mask[2, 0] = 0
        t = Tensor(x, requires_grad=True)
        (attn(t, mask) ** 2.0).sum().backward()
        idx = (0, 1, 4)
        eps = 1e-6
        xp, xm = x.copy(), x.copy()
        xp[idx] += eps
        xm[idx] -= eps
        fp = float((attn(Tensor(xp), mask).data ** 2).sum())
        fm = float((attn(Tensor(xm), mask).data ** 2).sum())
        numeric = (fp - fm) / (2 * eps)
        assert t.grad[idx] == pytest.approx(numeric, abs=1e-4)

    def test_all_projections_receive_gradient(self):
        attn = make_attn()
        out = attn(Tensor(RNG.standard_normal((1, 4, 8)), requires_grad=True))
        (out * out).sum().backward()
        for _name, p in attn.named_parameters():
            assert p.grad is not None
