"""Property-based tests (hypothesis) for the autograd core."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.nn import Tensor
from repro.nn.tensor import _unbroadcast

finite_floats = st.floats(min_value=-10, max_value=10,
                          allow_nan=False, allow_infinity=False)


def small_arrays(max_dims=3, max_side=4):
    return arrays(
        dtype=np.float64,
        shape=array_shapes(min_dims=1, max_dims=max_dims, max_side=max_side),
        elements=finite_floats,
    )


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_softmax_rows_are_distributions(x):
    out = Tensor(x).softmax(axis=-1).data
    assert np.all(out >= 0)
    assert np.allclose(out.sum(axis=-1), 1.0)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_log_softmax_consistency(x):
    t = Tensor(x)
    assert np.allclose(t.log_softmax().data, np.log(t.softmax().data + 1e-300),
                       atol=1e-8)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_addition_gradient_is_ones(x):
    t = Tensor(x, requires_grad=True)
    (t + 1.0).sum().backward()
    assert np.allclose(t.grad, 1.0)


@settings(max_examples=40, deadline=None)
@given(small_arrays(), finite_floats)
def test_scalar_mul_gradient(x, c):
    t = Tensor(x, requires_grad=True)
    (t * c).sum().backward()
    assert np.allclose(t.grad, c)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_unbroadcast_conserves_gradient_mass(grad):
    """Summing a broadcast gradient back must conserve its total."""
    target_shape = tuple(1 for _ in grad.shape)
    reduced = _unbroadcast(grad, target_shape)
    assert reduced.shape == target_shape
    assert np.allclose(reduced.sum(), grad.sum())


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_sum_then_backward_shapes(x):
    t = Tensor(x, requires_grad=True)
    t.sum().backward()
    assert t.grad.shape == x.shape


@settings(max_examples=30, deadline=None)
@given(small_arrays(max_dims=2))
def test_tanh_bounded(x):
    out = Tensor(x).tanh().data
    assert np.all(np.abs(out) <= 1.0)


@settings(max_examples=30, deadline=None)
@given(small_arrays(max_dims=2))
def test_relu_nonnegative_and_idempotent(x):
    t = Tensor(x)
    once = t.relu().data
    twice = Tensor(once).relu().data
    assert np.all(once >= 0)
    assert np.allclose(once, twice)


@settings(max_examples=30, deadline=None)
@given(small_arrays(max_dims=2))
def test_reshape_roundtrip(x):
    t = Tensor(x, requires_grad=True)
    out = t.reshape(-1).reshape(*x.shape)
    assert np.allclose(out.data, x)
    out.sum().backward()
    assert t.grad.shape == x.shape
