"""Optimizers, LR schedules, and loss functions."""

import numpy as np
import pytest

from repro.nn import (
    SGD,
    Adam,
    AdamW,
    IGNORE_INDEX,
    LinearWarmupSchedule,
    Linear,
    Tensor,
    accuracy,
    binary_cross_entropy_with_logits,
    clip_grad_norm,
    cross_entropy,
    mse,
)
from repro.nn.layers import Parameter

RNG = np.random.default_rng(5)


def quadratic_param(start=5.0):
    return Parameter(np.array([start]))


class TestOptimizers:
    def test_sgd_step_math(self):
        p = quadratic_param(2.0)
        opt = SGD([p], lr=0.1)
        p.grad = np.array([4.0])
        opt.step()
        assert p.data.item() == pytest.approx(2.0 - 0.4)

    def test_sgd_momentum_accumulates(self):
        p = quadratic_param(0.0)
        opt = SGD([p], lr=1.0, momentum=0.9)
        p.grad = np.array([1.0])
        opt.step()          # v=1, p=-1
        p.grad = np.array([1.0])
        opt.step()          # v=1.9, p=-2.9
        assert p.data.item() == pytest.approx(-2.9)

    def test_adam_converges_on_quadratic(self):
        p = quadratic_param(5.0)
        opt = Adam([p], lr=0.2)
        for _ in range(200):
            opt.zero_grad()
            loss = (p * p).sum()
            loss.backward()
            opt.step()
        assert abs(p.data.item()) < 1e-2

    def test_adamw_decays_weights(self):
        p = quadratic_param(1.0)
        opt = AdamW([p], lr=0.0, weight_decay=0.1)
        # lr=0 means decoupled decay term is also 0; use lr>0, grad 0.
        opt = AdamW([p], lr=0.1, weight_decay=0.5)
        p.grad = np.zeros(1)
        opt.step()
        assert p.data.item() < 1.0

    def test_optimizer_requires_params(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_skips_params_without_grad(self):
        p = quadratic_param()
        opt = Adam([p], lr=0.1)
        opt.step()  # no grad set: no crash, no movement
        assert p.data.item() == 5.0

    def test_linear_regression_fits(self):
        rng = np.random.default_rng(0)
        layer = Linear(3, 1, rng=rng)
        X = rng.standard_normal((128, 3))
        w_true = np.array([[1.5], [-2.0], [0.7]])
        y = X @ w_true + 0.3
        opt = Adam(layer.parameters(), lr=0.05)
        for _ in range(300):
            opt.zero_grad()
            loss = mse(layer(Tensor(X)), y)
            loss.backward()
            opt.step()
        assert np.allclose(layer.weight.data, w_true, atol=0.05)
        assert layer.bias.data.item() == pytest.approx(0.3, abs=0.05)


class TestSchedule:
    def test_warmup_then_decay(self):
        p = quadratic_param()
        opt = Adam([p], lr=1.0)
        sched = LinearWarmupSchedule(opt, warmup_steps=10, total_steps=100)
        assert sched.lr_at(5) == pytest.approx(0.5)
        assert sched.lr_at(10) == pytest.approx(1.0)
        assert sched.lr_at(55) == pytest.approx(0.5)
        assert sched.lr_at(100) == pytest.approx(0.0)

    def test_step_updates_optimizer(self):
        p = quadratic_param()
        opt = Adam([p], lr=1.0)
        sched = LinearWarmupSchedule(opt, warmup_steps=2, total_steps=4)
        sched.step()
        assert opt.lr == pytest.approx(0.5)

    def test_invalid_bounds(self):
        p = quadratic_param()
        opt = Adam([p], lr=1.0)
        with pytest.raises(ValueError):
            LinearWarmupSchedule(opt, warmup_steps=5, total_steps=4)


class TestClipGradNorm:
    def test_no_clip_below_threshold(self):
        p = quadratic_param()
        p.grad = np.array([0.3])
        norm = clip_grad_norm([p], 1.0)
        assert norm == pytest.approx(0.3)
        assert p.grad.item() == pytest.approx(0.3)

    def test_clips_above_threshold(self):
        p = quadratic_param()
        p.grad = np.array([3.0, 4.0])  # norm 5
        p.data = np.zeros(2)
        norm = clip_grad_norm([p], 1.0)
        assert norm == pytest.approx(5.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)


class TestLosses:
    def test_cross_entropy_matches_manual(self):
        logits = Tensor(np.array([[2.0, 0.0], [0.0, 2.0]]))
        targets = np.array([0, 0])
        loss = cross_entropy(logits, targets)
        p0 = np.exp(2) / (np.exp(2) + 1)
        p1 = 1 / (np.exp(2) + 1)
        expected = -(np.log(p0) + np.log(p1)) / 2
        assert float(loss.data) == pytest.approx(expected)

    def test_cross_entropy_ignore_index(self):
        logits = Tensor(np.array([[5.0, 0.0], [0.0, 5.0], [9.0, 9.0]]))
        targets = np.array([0, IGNORE_INDEX, 1])
        loss = cross_entropy(logits, targets)
        # Only positions 0 and 2 count.
        assert float(loss.data) > 0
        all_ignored = np.array([IGNORE_INDEX, IGNORE_INDEX, IGNORE_INDEX])
        with pytest.raises(ValueError):
            cross_entropy(logits, all_ignored)

    def test_cross_entropy_gradient_only_on_kept_rows(self):
        logits = Tensor(RNG.standard_normal((3, 4)), requires_grad=True)
        targets = np.array([1, IGNORE_INDEX, 2])
        cross_entropy(logits, targets).backward()
        assert np.allclose(logits.grad[1], 0.0)
        assert np.abs(logits.grad[0]).sum() > 0

    def test_cross_entropy_shape_validation(self):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((2, 3))), np.zeros((3,), dtype=int))

    def test_bce_matches_manual(self):
        logits = Tensor(np.array([0.0, 2.0]))
        targets = np.array([1.0, 0.0])
        loss = float(binary_cross_entropy_with_logits(logits, targets).data)
        expected = (np.log(2) + (2 + np.log(1 + np.exp(-2)))) / 2
        assert loss == pytest.approx(expected, rel=1e-6)

    def test_bce_stable_for_extreme_logits(self):
        logits = Tensor(np.array([500.0, -500.0]))
        targets = np.array([1.0, 0.0])
        loss = float(binary_cross_entropy_with_logits(logits, targets).data)
        assert np.isfinite(loss) and loss < 1e-6

    def test_accuracy(self):
        logits = Tensor(np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]]))
        targets = np.array([0, 1, 1])
        assert accuracy(logits, targets) == pytest.approx(2 / 3)
        targets = np.array([0, IGNORE_INDEX, 1])
        assert accuracy(logits, targets) == pytest.approx(0.5)
