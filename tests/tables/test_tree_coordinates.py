"""Metadata tree and bi-dimensional coordinate tests."""

import pytest

from repro.tables.coordinates import BiCoordinates, CoordinateContext
from repro.tables.tree import MetadataTree


def two_level_tree():
    # Figure 1 HMD: "Efficacy End Point" spans all 3 columns; leaves below.
    return MetadataTree([
        ["Efficacy End Point", None, None],
        ["ORR", "OS", "Other Efficacy"],
    ])


class TestMetadataTree:
    def test_depth_and_width(self):
        tree = two_level_tree()
        assert tree.depth == 2
        assert tree.width == 3
        assert tree.is_hierarchical()

    def test_single_level_not_hierarchical(self):
        tree = MetadataTree([["a", "b"]])
        assert not tree.is_hierarchical()

    def test_empty_tree(self):
        tree = MetadataTree([], width=4)
        assert tree.depth == 0
        assert tree.path(2) == []
        assert tree.leaf_label(0) == ""

    def test_path_labels(self):
        tree = two_level_tree()
        assert tree.path_labels(1) == ["Efficacy End Point", "OS"]
        assert tree.path_labels(2) == ["Efficacy End Point", "Other Efficacy"]

    def test_coordinate_positions(self):
        tree = two_level_tree()
        assert tree.coordinate(0) == (0, 0)
        assert tree.coordinate(1) == (0, 1)
        assert tree.coordinate(2) == (0, 2)

    def test_two_parents(self):
        tree = MetadataTree([
            ["Group A", None, "Group B", None],
            ["w", "x", "y", "z"],
        ])
        assert tree.coordinate(0) == (0, 0)
        assert tree.coordinate(2) == (1, 2)
        assert tree.path_labels(3) == ["Group B", "z"]

    def test_spans(self):
        tree = two_level_tree()
        root_children = tree.root.children
        assert len(root_children) == 1
        assert root_children[0].span == (0, 3)
        assert [c.span for c in root_children[0].children] == [
            (0, 1), (1, 2), (2, 3),
        ]

    def test_qualified_label(self):
        tree = two_level_tree()
        assert tree.qualified_label(1) == "Efficacy End Point → OS"
        assert tree.leaf_label(1) == "OS"

    def test_nodes_breadth_first(self):
        tree = two_level_tree()
        labels = [n.label for n in tree.nodes()]
        assert labels[0] == "Efficacy End Point"
        assert set(labels[1:]) == {"ORR", "OS", "Other Efficacy"}

    def test_out_of_range_raises(self):
        with pytest.raises(IndexError):
            two_level_tree().path(5)

    def test_ragged_level_raises(self):
        with pytest.raises(ValueError):
            MetadataTree([["a", "b"], ["x"]])

    def test_orphan_level_attaches_to_root(self):
        # A level-2 label outside any level-1 span attaches to the root.
        tree = MetadataTree([
            [None, "P", None],
            ["a", "b", "c"],
        ])
        assert tree.path_labels(0) == ["a"]
        assert tree.path_labels(1) == ["P", "b"]


class TestBiCoordinates:
    def test_defaults(self):
        c = BiCoordinates()
        assert not c.is_nested
        assert c.nested == (0, 0)

    def test_render_with_paths(self):
        c = BiCoordinates(horizontal=(2, 7), vertical=(1, 3), row=1, col=2)
        assert c.render() == "(<2,7>;<1,3>)"

    def test_render_cartesian_fallback(self):
        c = BiCoordinates(row=4, col=2)
        assert c.render() == "(<2>;<4>)"

    def test_render_nested(self):
        c = BiCoordinates(nested=(1, 2))
        assert "@(1, 2)" in c.render()
        assert c.is_nested

    def test_embedding_indexes_layout(self):
        c = BiCoordinates(horizontal=(0, 2), vertical=(1,), row=5, col=3,
                          nested=(1, 2))
        vr, vc, hr, hc, nr, nc = c.embedding_indexes(clamp=100)
        assert (vr, vc, hr, hc, nr, nc) == (5, 1, 2, 3, 1, 2)

    def test_embedding_indexes_clamped(self):
        c = BiCoordinates(row=500, col=600)
        indexes = c.embedding_indexes(clamp=256)
        assert max(indexes) <= 255

    def test_relational_reduces_to_cartesian(self):
        """For a relational table the coordinates are plain (row, col)."""
        context = CoordinateContext(
            hmd_coordinate=((0,), (1,), (2,)),
            vmd_coordinate=((), (), ()),
        )
        c = context.for_cell(1, 2)
        vr, vc, hr, hc, nr, nc = c.embedding_indexes(clamp=10)
        assert (vr, hc) == (1, 2)
        assert (nr, nc) == (0, 0)

    def test_context_out_of_range_gives_empty_paths(self):
        context = CoordinateContext(hmd_coordinate=((0,),),
                                    vmd_coordinate=((0,),))
        c = context.for_cell(5, 5)
        assert c.horizontal == () and c.vertical == ()
