"""Cell value parsing tests (numbers, units, ranges, gaussians)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tables.values import (
    GaussianValue,
    NumberValue,
    RangeValue,
    TextValue,
    parse_value,
)


class TestNumberParsing:
    def test_plain_integer(self):
        v = parse_value("118")
        assert isinstance(v, NumberValue)
        assert v.value == 118.0 and v.unit is None

    def test_decimal(self):
        v = parse_value("20.3")
        assert isinstance(v, NumberValue) and v.value == pytest.approx(20.3)

    def test_negative(self):
        v = parse_value("-5.5")
        assert isinstance(v, NumberValue) and v.value == -5.5

    def test_number_with_unit(self):
        v = parse_value("20.3 months")
        assert isinstance(v, NumberValue)
        assert v.unit == "months" and v.category == "time"

    def test_percent(self):
        v = parse_value("45 %")
        assert isinstance(v, NumberValue) and v.category == "stats"

    def test_unknown_unit_degrades_to_text(self):
        assert isinstance(parse_value("20.3 zorks"), TextValue)

    def test_render(self):
        assert parse_value("20.3 months").render() == "20.3 months"
        assert parse_value("118").render() == "118"


class TestRangeParsing:
    def test_dash_range(self):
        v = parse_value("20-30")
        assert isinstance(v, RangeValue)
        assert (v.start, v.end) == (20.0, 30.0)
        assert v.width == 10.0

    def test_to_range(self):
        v = parse_value("20 to 30")
        assert isinstance(v, RangeValue)

    def test_range_with_unit(self):
        v = parse_value("20-30 year")
        assert isinstance(v, RangeValue)
        assert v.unit == "year" and v.category == "time"

    def test_en_dash(self):
        v = parse_value("20\N{EN DASH}30")
        assert isinstance(v, RangeValue)

    def test_reversed_bounds_not_a_range(self):
        assert not isinstance(parse_value("30-20"), RangeValue)

    def test_render(self):
        assert parse_value("20-30 year").render() == "20-30 year"


class TestGaussianParsing:
    def test_plus_minus_sign(self):
        v = parse_value("12.3 \N{PLUS-MINUS SIGN} 4.5")
        assert isinstance(v, GaussianValue)
        assert (v.mean, v.std) == (12.3, 4.5)

    def test_ascii_plus_minus(self):
        v = parse_value("12.3 +/- 4.5")
        assert isinstance(v, GaussianValue)

    def test_gaussian_with_unit(self):
        v = parse_value("12.3 \N{PLUS-MINUS SIGN} 4.5 mg")
        assert isinstance(v, GaussianValue)
        assert v.category == "weight"

    def test_gaussian_beats_range_and_number(self):
        assert isinstance(parse_value("1 +/- 2"), GaussianValue)


class TestTextParsing:
    def test_plain_text(self):
        v = parse_value("colon")
        assert isinstance(v, TextValue) and v.text == "colon"

    def test_empty(self):
        assert parse_value("   ").render() == ""

    def test_mixed_alpha_numeric_is_text(self):
        assert isinstance(parse_value("covid-19 wave"), TextValue)


class TestPropertyBased:
    @settings(max_examples=50, deadline=None)
    @given(st.floats(min_value=0.01, max_value=1e6, allow_nan=False))
    def test_number_roundtrip(self, x):
        rendered = NumberValue(round(x, 3)).render()
        parsed = parse_value(rendered)
        assert isinstance(parsed, NumberValue)
        assert parsed.value == pytest.approx(round(x, 3), rel=1e-6)

    @settings(max_examples=50, deadline=None)
    @given(st.floats(min_value=0, max_value=1000, allow_nan=False),
           st.floats(min_value=0, max_value=1000, allow_nan=False))
    def test_range_roundtrip(self, a, b):
        lo, hi = sorted([round(a, 2), round(b, 2)])
        rendered = RangeValue(lo, hi).render()
        parsed = parse_value(rendered)
        assert isinstance(parsed, RangeValue)
        assert parsed.start == pytest.approx(lo)
        assert parsed.end == pytest.approx(hi)

    @settings(max_examples=30, deadline=None)
    @given(st.sampled_from(["months", "mg", "%", "cm", "ml", "mmhg"]),
           st.floats(min_value=0.1, max_value=99, allow_nan=False))
    def test_units_survive_roundtrip(self, unit, x):
        rendered = f"{round(x, 1)} {unit}"
        parsed = parse_value(rendered)
        assert isinstance(parsed, NumberValue)
        assert parsed.unit == unit
