"""BiN → relational transform tests."""

import pytest

from repro.tables import Table, figure1_table, table1_nested, table2_relational
from repro.tables.transforms import flatten_to_relational, transpose_table, unnest


class TestFlatten:
    def test_result_is_relational(self):
        flat = flatten_to_relational(figure1_table())
        assert flat.is_relational
        assert not flat.has_nesting
        assert not flat.has_vmd

    def test_hierarchical_headers_qualified(self):
        flat = flatten_to_relational(figure1_table())
        labels = [flat.column_label(j) for j in range(flat.n_cols)]
        assert any("Efficacy End Point / OS" == l for l in labels)

    def test_vmd_becomes_key_columns(self):
        flat = flatten_to_relational(figure1_table())
        # Two VMD levels -> two leading key columns.
        first_cells = [flat.data[i][1].text for i in range(flat.n_rows)]
        assert "Previously Untreated" in first_cells

    def test_nested_tables_expand_to_columns(self):
        flat = flatten_to_relational(table1_nested())
        labels = [flat.column_label(j) for j in range(flat.n_cols)]
        assert any("Efficacy / OS" in l for l in labels)
        os_col = next(j for j, l in enumerate(labels) if "Efficacy / OS" in l)
        assert flat.data[0][os_col].text == "20.3 months"

    def test_non_nested_cell_in_nested_column_pads(self):
        flat = flatten_to_relational(table1_nested())
        labels = [flat.column_label(j) for j in range(flat.n_cols)]
        os_col = next(j for j, l in enumerate(labels) if "Efficacy / OS" in l)
        # Second row's Efficacy cell is plain text: lands in first slot.
        assert flat.data[1][os_col].text == "15.1 months"

    def test_already_relational_is_stable(self):
        t = table2_relational()
        flat = flatten_to_relational(t)
        assert flat.shape == t.shape
        assert [flat.column_label(j) for j in range(3)] == ["Name", "Age", "Job"]
        assert flat.data[0][0].text == "Sam"

    def test_preserves_caption_and_topic(self):
        flat = flatten_to_relational(figure1_table())
        assert flat.topic == "colorectal cancer treatment"


class TestTranspose:
    def test_swaps_shape(self):
        t = table2_relational()
        tt = transpose_table(t)
        assert tt.shape == (t.n_cols, t.n_rows)

    def test_data_transposed(self):
        t = table2_relational()
        tt = transpose_table(t)
        assert tt.data[0][1].text == t.data[1][0].text

    def test_hmd_becomes_vmd(self):
        t = table2_relational()
        tt = transpose_table(t)
        assert tt.has_vmd
        assert tt.row_label(2) == "Job"

    def test_double_transpose_restores_text(self):
        t = table2_relational()
        back = transpose_table(transpose_table(t))
        assert back.shape == t.shape
        for i in range(t.n_rows):
            for j in range(t.n_cols):
                assert back.data[i][j].text == t.data[i][j].text

    def test_nested_rejected(self):
        with pytest.raises(ValueError):
            transpose_table(figure1_table())


class TestUnnest:
    def test_extracts_all_nested(self):
        lifted = unnest(figure1_table())
        assert len(lifted) == 2
        assert all(t.n_cols == 3 for t in lifted)

    def test_provenance_in_caption(self):
        lifted = unnest(figure1_table())
        assert "Other Efficacy" in lifted[0].caption
        assert "Previously Untreated" in lifted[0].caption

    def test_no_nesting_yields_empty(self):
        assert unnest(table2_relational()) == []

    def test_recursive_unnesting(self):
        inner = Table("leaf", [["x"]], [["1"]])
        middle = Table("middle", [["m"]], [[inner]])
        outer = Table("outer", [["o"]], [[middle]])
        lifted = unnest(outer)
        assert len(lifted) == 2
        assert any("leaf" in t.caption for t in lifted)

    def test_lifted_tables_inherit_topic(self):
        lifted = unnest(table1_nested())
        assert all(t.topic for t in lifted)
