"""Table model tests: structure predicates, labels, round-trips."""

import pytest

from repro.tables import (
    Table,
    figure1_table,
    parse_grid,
    table1_nested,
    table2_relational,
)


class TestConstruction:
    def test_rejects_empty_data(self):
        with pytest.raises(ValueError):
            Table("t", [["a"]], data=[])

    def test_rejects_ragged_data(self):
        with pytest.raises(ValueError):
            Table("t", [["a", "b"]], data=[["1", "2"], ["3"]])

    def test_rejects_bad_concepts_length(self):
        with pytest.raises(ValueError):
            Table("t", [["a"]], data=[["1"]], column_concepts=["x", "y"])

    def test_shape(self):
        t = table2_relational()
        assert t.shape == (3, 3)
        assert t.n_rows == 3 and t.n_cols == 3


class TestPredicates:
    def test_relational_table(self):
        t = table2_relational()
        assert t.is_relational
        assert not t.has_vmd
        assert not t.has_nesting
        assert not t.has_hierarchical_metadata

    def test_figure1_is_bin_table(self):
        t = figure1_table()
        assert not t.is_relational
        assert t.has_vmd and t.has_hmd
        assert t.has_hierarchical_metadata
        assert t.has_nesting

    def test_nested_tables_found(self):
        t = figure1_table()
        nested = t.nested_tables()
        assert len(nested) == 2
        assert all(n.n_cols == 3 for n in nested)

    def test_numeric_fraction(self):
        t = table2_relational()
        # One numeric column (Age) of three.
        assert t.numeric_fraction() == pytest.approx(1 / 3)


class TestLabels:
    def test_column_labels(self):
        t = figure1_table()
        assert t.column_label(1) == "OS"
        assert t.qualified_column_label(1) == "Efficacy End Point → OS"

    def test_row_labels(self):
        t = figure1_table()
        assert t.row_label(0) == "Previously Untreated"
        assert "Patient Cohort" in t.qualified_row_label(0)

    def test_row_label_empty_without_vmd(self):
        t = table2_relational()
        assert t.row_label(0) == ""

    def test_column_concept_fallback(self):
        t = Table("t", [["Population"]], data=[["5"]])
        assert t.column_concept(0) == "population"

    def test_column_concept_explicit(self):
        t = table2_relational()
        assert t.column_concept(0) == "person name"

    def test_metadata_label_enumeration(self):
        t = figure1_table()
        hmd = t.hmd_labels()
        assert {l.label for l in hmd} == {
            "Efficacy End Point", "ORR", "OS", "Other Efficacy",
        }
        parent = next(l for l in hmd if l.label == "Efficacy End Point")
        assert parent.level == 1 and parent.span == (0, 3)
        vmd = t.vmd_labels()
        assert any(l.label == "Patient Cohort" for l in vmd)

    def test_metadata_label_coords(self):
        t = figure1_table()
        os_label = next(l for l in t.hmd_labels() if l.label == "OS")
        coords = os_label.coords()
        assert coords.row == 1      # level 2 -> header row index 1
        assert coords.col == 1


class TestCellAccess:
    def test_row_and_column_views(self):
        t = table2_relational()
        assert [c.text for c in t.row(0)] == ["Sam", "28", "Engineer"]
        assert [c.text for c in t.column(2)] == ["Engineer", "Lawyer", "Scientist"]

    def test_all_cells_count(self):
        t = table2_relational()
        assert len(list(t.all_cells())) == 9

    def test_entity_types_stamped(self):
        t = table2_relational()
        assert t.data[0][0].entity_type == "person"
        assert t.data[0][1].entity_type is None

    def test_cell_coordinates(self):
        t = figure1_table()
        cell = t.data[1][2]
        assert cell.coords.row == 1 and cell.coords.col == 2
        assert cell.coords.horizontal == t.hmd_tree.coordinate(2)

    def test_cell_features_unit_and_nesting(self):
        t = figure1_table()
        assert t.data[0][1].cell_features()[4] == 1      # months -> time bit
        assert t.data[0][2].cell_features()[-1] == 1     # nested bit


class TestSerialization:
    def test_dict_roundtrip_preserves_structure(self):
        t = figure1_table()
        clone = Table.from_dict(t.to_dict())
        assert clone.shape == t.shape
        assert clone.topic == t.topic
        assert clone.qualified_column_label(2) == t.qualified_column_label(2)
        assert clone.data[0][2].has_nested_table
        assert clone.data[0][0].text == t.data[0][0].text

    def test_roundtrip_preserves_entities_and_concepts(self):
        t = table1_nested()
        clone = Table.from_dict(t.to_dict())
        assert clone.data[0][0].entity_type == "drug"
        assert clone.column_concept(1) == "cohort size"

    def test_corpus_io(self, tmp_path):
        from repro.tables import load_corpus, save_corpus

        tables = [figure1_table(), table2_relational()]
        path = tmp_path / "corpus.jsonl"
        save_corpus(tables, path)
        loaded = load_corpus(path)
        assert len(loaded) == 2
        assert loaded[0].has_nesting


class TestParseGrid:
    def test_simple_relational(self):
        t = parse_grid([
            ["Name", "Age"],
            ["Sam", "28"],
            ["Alice", "34"],
        ], n_header_rows=1)
        assert t.is_relational
        assert t.column_label(0) == "Name"
        assert t.n_rows == 2

    def test_header_cols(self):
        t = parse_grid([
            ["", "OS", "PFS"],
            ["colon", "20.3", "5.6"],
            ["rectal", "18.1", "4.2"],
        ], n_header_rows=1, n_header_cols=1)
        assert t.has_vmd
        assert t.row_label(0) == "colon"
        assert t.n_cols == 2

    def test_merged_spans_via_empty_strings(self):
        t = parse_grid([
            ["Efficacy", "", ""],
            ["ORR", "OS", "HR"],
            ["1", "2", "3"],
        ], n_header_rows=2)
        assert t.hmd_tree.depth == 2
        assert t.qualified_column_label(1) == "Efficacy → OS"

    def test_errors(self):
        with pytest.raises(ValueError):
            parse_grid([])
        with pytest.raises(ValueError):
            parse_grid([["a", "b"], ["c"]])
        with pytest.raises(ValueError):
            parse_grid([["a"]], n_header_rows=1)
        with pytest.raises(ValueError):
            parse_grid([["a"], ["b"]], n_header_rows=1, n_header_cols=1)
