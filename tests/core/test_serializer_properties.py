"""Property-based serializer/visibility invariants over generated tables."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import build_visibility
from repro.datasets import CANCERKG, CorpusGenerator


@pytest.fixture(scope="module")
def pool():
    """A pool of diverse generated tables shared by the properties."""
    profile = CANCERKG.scaled(12)
    return CorpusGenerator(profile, seed=99).generate()


@settings(max_examples=25, deadline=None)
@given(table_idx=st.integers(min_value=0, max_value=11),
       segment=st.sampled_from(["row", "column", "hmd", "vmd"]))
def test_sequences_well_formed(serializer, pool, table_idx, segment):
    """Every sequence has aligned arrays, bounded ids, valid refs."""
    table = pool[table_idx]
    for seq in serializer.serialize(table, segment):
        n = len(seq)
        assert seq.token_ids.shape == (n,)
        assert seq.coords.shape == (n, 6)
        assert (seq.coords >= 0).all()
        assert (seq.cell_pos >= 0).all()
        assert seq.cell_index.max(initial=-1) < len(seq.cell_refs)
        assert (seq.type_ids >= 0).all() and (seq.type_ids < 14).all()
        assert set(np.unique(seq.features)) <= {0.0, 1.0}
        assert n <= serializer.config.max_seq_len


@settings(max_examples=25, deadline=None)
@given(table_idx=st.integers(min_value=0, max_value=11),
       segment=st.sampled_from(["row", "column"]))
def test_every_cell_ref_has_tokens(serializer, pool, table_idx, segment):
    table = pool[table_idx]
    for seq in serializer.serialize(table, segment):
        for idx in range(len(seq.cell_refs)):
            assert seq.tokens_of_cell(idx).size > 0


@settings(max_examples=20, deadline=None)
@given(table_idx=st.integers(min_value=0, max_value=11),
       segment=st.sampled_from(["row", "column", "hmd", "vmd"]))
def test_visibility_symmetric_reflexive(serializer, pool, table_idx, segment):
    table = pool[table_idx]
    for seq in serializer.serialize(table, segment):
        M = build_visibility(seq)
        assert (M == M.T).all()
        assert (np.diag(M) == 1).all()
        # Every row has at least one visible token (softmax well-defined).
        assert (M.sum(axis=1) >= 1).all()


@settings(max_examples=20, deadline=None)
@given(table_idx=st.integers(min_value=0, max_value=11))
def test_row_and_column_serializations_agree_on_cells(serializer, pool,
                                                      table_idx):
    """Both data serializations cover exactly the table's grid cells."""
    table = pool[table_idx]

    def covered(segment):
        cells = set()
        for seq in serializer.serialize(table, segment):
            for ref in seq.cell_refs:
                if ref.kind == "data":
                    cells.add((ref.row, ref.col))
        return cells

    grid = {(i, j) for i in range(table.n_rows) for j in range(table.n_cols)
            if table.data[i][j].text}
    assert covered("row") == grid
    assert covered("column") == grid
