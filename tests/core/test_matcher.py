"""TabBiNMatcher (entity-matching head) unit tests."""

import numpy as np
import pytest

from repro.core.classifier import TabBiNMatcher
from repro.datasets import EntityPair, entity_pairs_from_corpus, load_dataset


@pytest.fixture(scope="module")
def pairs():
    corpus = load_dataset("webtables", n_tables=16, seed=13)
    return entity_pairs_from_corpus(corpus, n_pairs=40, seed=0)


class TestMatcher:
    def test_requires_positive_ensemble(self, embedder):
        with pytest.raises(ValueError):
            TabBiNMatcher(embedder, ensemble=0)

    def test_predict_before_fit_raises(self, embedder, pairs):
        matcher = TabBiNMatcher(embedder, ensemble=1)
        with pytest.raises(RuntimeError):
            matcher.predict(pairs[:2])

    def test_pair_features_layout(self, embedder, pairs):
        matcher = TabBiNMatcher(embedder, ensemble=1)
        features = matcher.pair_features(pairs[0])
        H = embedder.hidden
        assert features.shape == (4 * H,)
        a, b = features[:H], features[H:2 * H]
        assert np.allclose(features[2 * H:3 * H], np.abs(a - b))
        assert np.allclose(features[3 * H:], a * b)

    def test_learns_separable_pairs(self, embedder, pairs):
        matcher = TabBiNMatcher(embedder, ensemble=2, seed=0)
        matcher.fit(pairs, epochs=60)
        assert matcher.evaluate_f1(pairs) > 0.7

    def test_probabilities_are_distributions(self, embedder, pairs):
        matcher = TabBiNMatcher(embedder, ensemble=2, seed=0)
        matcher.fit(pairs[:20], epochs=10)
        probs = matcher.predict_proba(pairs[:6])
        assert probs.shape == (6, 2)
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert (probs >= 0).all()

    def test_ensemble_determinism(self, embedder, pairs):
        m1 = TabBiNMatcher(embedder, ensemble=2, seed=5)
        m1.fit(pairs[:20], epochs=10)
        m2 = TabBiNMatcher(embedder, ensemble=2, seed=5)
        m2.fit(pairs[:20], epochs=10)
        assert m1.predict(pairs[:10]) == m2.predict(pairs[:10])

    def test_identical_pair_scores_matchy(self, embedder, pairs):
        matcher = TabBiNMatcher(embedder, ensemble=2, seed=0)
        matcher.fit(pairs, epochs=60)
        text = "COL entity VAL chicago COL type VAL place"
        same = EntityPair(text, text, 1)
        proba = matcher.predict_proba([same])[0, 1]
        different = next(p for p in pairs if p.label == 0)
        proba_diff = matcher.predict_proba([different])[0, 1]
        assert proba > proba_diff
