"""Visibility matrix tests — the Section 3.2 semantics."""

import numpy as np

from repro.core import build_visibility, full_visibility, visibility_for
from repro.tables import figure1_table, table2_relational


def find_cell(seq, text):
    for idx, ref in enumerate(seq.cell_refs):
        if ref.text == text:
            return seq.tokens_of_cell(idx)
    raise AssertionError(f"cell {text!r} not found")


class TestDataVisibility:
    def test_matrix_is_binary_symmetric_with_diagonal(self, serializer):
        seq = serializer.serialize(table2_relational(), "row")[0]
        M = build_visibility(seq)
        assert set(np.unique(M)) <= {0, 1}
        assert (M == M.T).all()
        assert (np.diag(M) == 1).all()

    def test_same_row_visible(self, serializer):
        """'Sam' and 'Engineer' are related because they share a row."""
        seq = serializer.serialize(table2_relational(), "row")[0]
        M = build_visibility(seq)
        sam = find_cell(seq, "Sam")
        engineer = find_cell(seq, "Engineer")
        assert M[sam[0], engineer[0]] == 1

    def test_cross_row_cross_column_blocked(self, serializer):
        """'Sam' should not be related to 'Lawyer' (different row & col)."""
        seq = serializer.serialize(table2_relational(), "row")[0]
        M = build_visibility(seq)
        sam = find_cell(seq, "Sam")
        lawyer = find_cell(seq, "Lawyer")
        assert M[sam[0], lawyer[0]] == 0

    def test_same_column_visible(self, serializer):
        """'Engineer' and 'Lawyer' share the Job column."""
        seq = serializer.serialize(table2_relational(), "row")[0]
        M = build_visibility(seq)
        engineer = find_cell(seq, "Engineer")
        lawyer = find_cell(seq, "Lawyer")
        assert M[engineer[0], lawyer[0]] == 1

    def test_cls_sees_everything(self, serializer, tokenizer):
        seq = serializer.serialize(table2_relational(), "row")[0]
        M = build_visibility(seq)
        cls_positions = np.nonzero(seq.token_ids == tokenizer.vocab.cls_id)[0]
        for p in cls_positions:
            assert M[p].all() and M[:, p].all()


class TestMetadataVisibility:
    def test_ancestor_descendant_visible(self, serializer):
        seq = serializer.serialize(figure1_table(), "hmd")[0]
        M = build_visibility(seq)
        parent = find_cell(seq, "Efficacy End Point")
        child = find_cell(seq, "OS")
        assert M[parent[0], child[0]] == 1

    def test_same_level_visible(self, serializer):
        seq = serializer.serialize(figure1_table(), "hmd")[0]
        M = build_visibility(seq)
        orr = find_cell(seq, "ORR")
        other = find_cell(seq, "Other Efficacy")
        assert M[orr[0], other[0]] == 1


class TestAblation:
    def test_full_visibility_is_all_ones(self):
        M = full_visibility(5)
        assert M.shape == (5, 5)
        assert (M == 1).all()

    def test_visibility_for_honours_flag(self, serializer):
        seq = serializer.serialize(table2_relational(), "row")[0]
        masked = visibility_for(seq, use_visibility=True)
        unmasked = visibility_for(seq, use_visibility=False)
        assert (unmasked == 1).all()
        assert masked.sum() < unmasked.sum()

    def test_structured_mask_is_sparser_than_full(self, serializer):
        seq = serializer.serialize(figure1_table(), "row")[0]
        M = build_visibility(seq)
        assert 0.0 < M.mean() < 1.0
