"""MLM + CLC pre-training tests."""

import numpy as np
import pytest

from repro.core import TabBiNConfig
from repro.core.model import TabBiNModel
from repro.core.pretrain import TabBiNPretrainer
from repro.nn import IGNORE_INDEX
from repro.tables import figure1_table, table1_nested, table2_relational


@pytest.fixture()
def trainer(config, tokenizer):
    model = TabBiNModel(config, pad_id=tokenizer.vocab.pad_id,
                        rng=np.random.default_rng(0))
    return TabBiNPretrainer(model, tokenizer.vocab, config, seed=0)


@pytest.fixture()
def sequences(serializer):
    out = []
    for table in (figure1_table(), table1_nested(), table2_relational()):
        out.extend(serializer.serialize(table, "row"))
    return out


class TestMasking:
    def test_labels_only_at_masked_positions(self, trainer, sequences):
        masked, labels = trainer.mask_batch(sequences)
        originals, _ = trainer.model.embedding.batch_arrays(
            sequences, trainer.vocab.pad_id)[0], None
        changed = masked != originals
        # Every changed position must have a label…
        assert (labels[changed] != IGNORE_INDEX).all()
        # …and labels store the original token.
        labeled = labels != IGNORE_INDEX
        assert (labels[labeled] == originals[labeled]).all()

    def test_specials_never_masked(self, trainer, sequences):
        specials = sorted(trainer.vocab.special_ids() - {trainer.vocab.val_id})
        originals = trainer.model.embedding.batch_arrays(
            sequences, trainer.vocab.pad_id)[0]
        _masked, labels = trainer.mask_batch(sequences)
        special_positions = np.isin(originals, specials)
        assert (labels[special_positions] == IGNORE_INDEX).all()

    def test_masking_rate_reasonable(self, trainer, sequences):
        rates = []
        for _ in range(10):
            _masked, labels = trainer.mask_batch(sequences)
            rates.append((labels != IGNORE_INDEX).mean())
        # MLM 15% + CLC whole cells: expect a low but non-trivial rate.
        assert 0.03 < np.mean(rates) < 0.6

    def test_at_least_one_target_per_sequence(self, trainer, sequences):
        for seq in sequences:
            _masked, labels = trainer.mask_batch([seq])
            assert (labels != IGNORE_INDEX).any()

    def test_clc_masks_whole_cells(self, config, tokenizer, serializer):
        """With clc_probability=1 every cell is fully masked."""
        from dataclasses import replace

        clc_config = replace(config, clc_probability=1.0, mlm_probability=0.0)
        model = TabBiNModel(clc_config, pad_id=tokenizer.vocab.pad_id,
                            rng=np.random.default_rng(0))
        trainer = TabBiNPretrainer(model, tokenizer.vocab, clc_config, seed=0)
        seq = serializer.serialize(table2_relational(), "row")[0]
        masked, labels = trainer.mask_batch([seq])
        for idx in range(len(seq.cell_refs)):
            positions = seq.tokens_of_cell(idx)
            assert (masked[0, positions] == tokenizer.vocab.mask_id).all()
            assert (labels[0, positions] != IGNORE_INDEX).all()


class TestTraining:
    def test_loss_decreases(self, trainer, sequences):
        stats = trainer.train(sequences, steps=25, batch_size=4, lr=5e-3)
        assert stats.steps == 25
        assert stats.improved(), (stats.losses[:3], stats.losses[-3:])

    def test_accuracy_tracked(self, trainer, sequences):
        stats = trainer.train(sequences, steps=5, batch_size=2)
        assert len(stats.accuracies) == stats.steps
        assert all(0.0 <= a <= 1.0 for a in stats.accuracies)

    def test_empty_sequences_rejected(self, trainer):
        with pytest.raises(ValueError):
            trainer.train([], steps=1)

    def test_model_left_in_eval_mode(self, trainer, sequences):
        trainer.train(sequences, steps=2, batch_size=2)
        assert not trainer.model.training

    def test_stats_final_loss(self, trainer, sequences):
        stats = trainer.train(sequences, steps=3, batch_size=2)
        assert stats.final_loss == stats.losses[-1]
        from repro.core.pretrain import PretrainStats

        assert np.isnan(PretrainStats().final_loss)
