"""Shared fixtures for core tests: tiny tokenizer/serializer/models."""

import numpy as np
import pytest

from repro.core import TabBiNConfig, TabBiNEmbedder, TabBiNSerializer, corpus_texts
from repro.core.model import TabBiNModel
from repro.tables import figure1_table, table1_nested, table2_relational
from repro.text import TypeInference, WordPieceTokenizer


@pytest.fixture(scope="session")
def corpus():
    return [figure1_table(), table1_nested(), table2_relational()]


@pytest.fixture(scope="session")
def tokenizer(corpus):
    return WordPieceTokenizer.train(corpus_texts(corpus), vocab_size=400)


@pytest.fixture(scope="session")
def config(tokenizer):
    return TabBiNConfig.tiny().with_vocab(len(tokenizer.vocab))


@pytest.fixture(scope="session")
def serializer(tokenizer, config):
    return TabBiNSerializer(tokenizer, TypeInference(), config)


@pytest.fixture(scope="session")
def model(config, tokenizer):
    m = TabBiNModel(config, pad_id=tokenizer.vocab.pad_id,
                    rng=np.random.default_rng(0))
    m.eval()
    return m


@pytest.fixture(scope="session")
def embedder(corpus):
    """A lightly pre-trained embedder shared across tests."""
    emb, _stats = TabBiNEmbedder.build(
        corpus * 2, config=TabBiNConfig.tiny(), steps=5, vocab_size=400, seed=0,
    )
    return emb
