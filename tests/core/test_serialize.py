"""Serializer tests: segments, structural tokens, coordinates, nesting."""

import numpy as np
import pytest

from repro.core import SEGMENTS
from repro.tables import figure1_table, table1_nested, table2_relational


class TestSegments:
    def test_all_segments_produce_sequences(self, serializer):
        table = figure1_table()
        for segment in SEGMENTS:
            sequences = serializer.serialize(table, segment)
            assert sequences, segment

    def test_unknown_segment_rejected(self, serializer):
        with pytest.raises(ValueError):
            serializer.serialize(figure1_table(), "diagonal")

    def test_relational_table_has_no_vmd_sequences(self, serializer):
        assert serializer.serialize(table2_relational(), "vmd") == []

    def test_row_and_column_cover_all_cells(self, serializer):
        table = table2_relational()
        for segment in ("row", "column"):
            refs = [r for s in serializer.serialize(table, segment)
                    for r in s.cell_refs]
            cells = {(r.row, r.col) for r in refs if r.kind == "data"}
            assert cells == {(i, j) for i in range(3) for j in range(3)}


class TestStructuralTokens:
    def test_cls_starts_each_row(self, serializer, tokenizer):
        table = table2_relational()
        seq = serializer.serialize(table, "row")[0]
        cls_positions = np.nonzero(seq.token_ids == tokenizer.vocab.cls_id)[0]
        assert len(cls_positions) == table.n_rows

    def test_sep_between_cells(self, serializer, tokenizer):
        table = table2_relational()
        seq = serializer.serialize(table, "row")[0]
        n_sep = int((seq.token_ids == tokenizer.vocab.sep_id).sum())
        assert n_sep == table.n_rows * table.n_cols  # one after each cell

    def test_structural_tokens_have_no_cell(self, serializer, tokenizer):
        seq = serializer.serialize(table2_relational(), "row")[0]
        for special in (tokenizer.vocab.cls_id,):
            positions = np.nonzero(seq.token_ids == special)[0]
            assert all(seq.cell_index[p] == -1 for p in positions)

    def test_numbers_become_val_with_features(self, serializer, tokenizer):
        table = table2_relational()  # Age column is numeric
        seq = serializer.serialize(table, "row")[0]
        val_positions = np.nonzero(seq.token_ids == tokenizer.vocab.val_id)[0]
        assert len(val_positions) == 3  # three ages
        for p in val_positions:
            assert seq.numeric[p].sum() > 0  # real numeric features
        non_val = np.nonzero(seq.token_ids != tokenizer.vocab.val_id)[0]
        assert all(seq.numeric[p].sum() == 0 for p in non_val)


class TestFeatureStreams:
    def test_parallel_arrays_aligned(self, serializer):
        seq = serializer.serialize(figure1_table(), "row")[0]
        n = len(seq)
        assert seq.token_ids.shape == (n,)
        assert seq.numeric.shape == (n, 4)
        assert seq.cell_pos.shape == (n,)
        assert seq.coords.shape == (n, 6)
        assert seq.type_ids.shape == (n,)
        assert seq.features.shape == (n, 8)
        assert seq.cell_index.shape == (n,)
        assert seq.spans.shape == (n, 2)

    def test_in_cell_positions_restart_per_cell(self, serializer):
        seq = serializer.serialize(figure1_table(), "row")[0]
        for idx in range(len(seq.cell_refs)):
            positions = seq.tokens_of_cell(idx)
            if positions.size:
                assert seq.cell_pos[positions[0]] == 0

    def test_type_ids_assigned_per_cell(self, serializer):
        from repro.text.types import TYPE_TO_ID

        seq = serializer.serialize(table1_nested(), "row")[0]
        # 'ramucirumab' cell tokens typed as drug.
        drug_cells = [i for i, r in enumerate(seq.cell_refs)
                      if r.text == "ramucirumab"]
        assert drug_cells
        positions = seq.tokens_of_cell(drug_cells[0])
        assert all(seq.type_ids[p] == TYPE_TO_ID["drug"] for p in positions)

    def test_unit_bits_set(self, serializer):
        seq = serializer.serialize(figure1_table(), "row")[0]
        month_cells = [i for i, r in enumerate(seq.cell_refs)
                       if "months" in r.text]
        assert month_cells
        positions = seq.tokens_of_cell(month_cells[0])
        assert all(seq.features[p][4] == 1 for p in positions)  # time bit

    def test_coordinates_match_cells(self, serializer):
        table = table2_relational()
        seq = serializer.serialize(table, "row")[0]
        for idx, ref in enumerate(seq.cell_refs):
            positions = seq.tokens_of_cell(idx)
            for p in positions:
                vr, _vc, _hr, hc, nr, nc = seq.coords[p]
                assert (vr, hc) == (ref.row, ref.col)
                assert (nr, nc) == (0, 0)


class TestNesting:
    def test_nested_tokens_carry_nested_coords(self, serializer):
        table = table1_nested()
        seq = serializer.serialize(table, "row")[0]
        nested_positions = np.nonzero(seq.coords[:, 4] > 0)[0]
        assert nested_positions.size > 0
        # Nested tokens inherit the outer cell's grid position.
        for p in nested_positions:
            vr, _vc, _hr, hc, nr, nc = seq.coords[p]
            assert nr >= 1 and nc >= 1

    def test_nested_bit_set_on_outer_cell_only(self, serializer):
        table = table1_nested()
        seq = serializer.serialize(table, "row")[0]
        nested_flag = seq.features[:, 7]
        nested_coord = seq.coords[:, 4] > 0
        # All tokens with nested coords belong to a nested cell whose
        # feature bit is on.
        assert (nested_flag[nested_coord] == 1).all()

    def test_non_nested_default_zero(self, serializer):
        seq = serializer.serialize(table2_relational(), "row")[0]
        assert (seq.coords[:, 4:] == 0).all()


class TestMetadataSerialization:
    def test_hmd_refs_carry_levels_and_spans(self, serializer):
        table = figure1_table()
        seq = serializer.serialize(table, "hmd")[0]
        by_text = {r.text: r for r in seq.cell_refs}
        assert by_text["Efficacy End Point"].row == 1
        assert by_text["Efficacy End Point"].span == (0, 3)
        assert by_text["OS"].row == 2
        assert by_text["OS"].span == (1, 2)

    def test_vmd_refs(self, serializer):
        table = figure1_table()
        seq = serializer.serialize(table, "vmd")[0]
        texts = {r.text for r in seq.cell_refs}
        assert "Patient Cohort" in texts
        assert "Previously Untreated" in texts


class TestChunking:
    def test_sequences_respect_max_len(self, serializer, config):
        from repro.tables import Table

        big = Table(
            caption="big",
            header_rows=[[f"col {j}" for j in range(6)]],
            data=[[f"value {i} {j}" for j in range(6)] for i in range(30)],
        )
        sequences = serializer.serialize(big, "row")
        assert len(sequences) > 1
        assert all(len(s) <= config.max_seq_len for s in sequences)

    def test_cell_token_cap(self, serializer, config):
        from repro.tables import Table

        long_cell = " ".join(f"tok{i}" for i in range(100))
        t = Table("t", [["a"]], data=[[long_cell]])
        seq = serializer.serialize(t, "row")[0]
        assert seq.tokens_of_cell(0).size <= config.max_cell_tokens


class TestTextSerialization:
    def test_serialize_text_single_cell(self, serializer, tokenizer):
        seq = serializer.serialize_text("ramucirumab")
        assert seq.token_ids[0] == tokenizer.vocab.cls_id
        assert len(seq.cell_refs) == 1
        assert seq.tokens_of_cell(0).size >= 1

    def test_serialize_text_empty_has_no_body(self, serializer):
        seq = serializer.serialize_text("")
        assert seq.tokens_of_cell(0).size == 0
