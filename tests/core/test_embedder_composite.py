"""TabBiNEmbedder public API and composite embedding tests."""

import numpy as np
import pytest

from repro.core import (
    TabBiNConfig,
    TabBiNEmbedder,
    gaussian_composite,
    numeric_composite,
    range_composite,
    value_composite,
)
from repro.tables import figure1_table, table1_nested, table2_relational
from repro.tables.values import parse_value


class TestBuild:
    def test_build_trains_all_four_models(self, embedder):
        assert set(embedder.models) == {"row", "column", "hmd", "vmd"}

    def test_build_returns_stats(self, corpus):
        _emb, stats = TabBiNEmbedder.build(
            corpus, config=TabBiNConfig.tiny(), steps=2, vocab_size=300,
        )
        assert set(stats) == {"row", "column", "hmd", "vmd"}
        assert stats["row"].steps == 2

    def test_missing_segment_model_rejected(self, embedder):
        with pytest.raises(ValueError):
            TabBiNEmbedder(embedder.tokenizer, embedder.types,
                           embedder.config, {"row": embedder.models["row"]})


class TestEmbeddings:
    def test_column_embedding_is_composite(self, embedder):
        table = figure1_table()
        full = embedder.column_embedding(table, 1)
        data_only = embedder.column_embedding(table, 1, composite=False)
        assert full.shape == (2 * embedder.hidden,)
        assert data_only.shape == (embedder.hidden,)
        assert np.allclose(full[embedder.hidden:], data_only)

    def test_attribute_embedding_uses_deepest_label(self, embedder):
        table = figure1_table()
        a1 = embedder.attribute_embedding(table, 0)
        a2 = embedder.attribute_embedding(table, 1)
        assert a1.shape == (embedder.hidden,)
        assert not np.allclose(a1, a2)  # different leaf labels

    def test_table_embedding_variants(self, embedder):
        table = figure1_table()
        row = embedder.table_embedding(table, variant="row")
        comp1 = embedder.table_embedding(table, variant="tblcomp1")
        comp2 = embedder.table_embedding(table, variant="tblcomp2")
        assert row.shape == (embedder.hidden,)
        assert comp1.shape == (3 * embedder.hidden,)
        assert comp2.shape == (4 * embedder.hidden,)
        assert np.allclose(comp1, comp2[: 3 * embedder.hidden])

    def test_unknown_variant_rejected(self, embedder):
        with pytest.raises(ValueError):
            embedder.table_embedding(figure1_table(), variant="bogus")

    def test_vmd_block_zero_for_relational(self, embedder):
        emb = embedder.table_embedding(table2_relational(), variant="tblcomp1")
        h = embedder.hidden
        assert np.allclose(emb[2 * h:], 0.0)  # no VMD segment

    def test_entity_embedding(self, embedder):
        v = embedder.entity_embedding("ramucirumab")
        assert v.shape == (embedder.hidden,)
        assert np.isfinite(v).all()
        assert not np.allclose(v, 0.0)

    def test_similar_entities_closer_than_dissimilar(self, embedder):
        from repro.retrieval import cosine_similarity

        drug_a = embedder.entity_embedding("ramucirumab treatment")
        drug_b = embedder.entity_embedding("ramucirumab therapy")
        other = embedder.entity_embedding("previously untreated cohort")
        assert cosine_similarity(drug_a, drug_b) > cosine_similarity(drug_a, other)

    def test_caching_is_consistent(self, embedder):
        table = figure1_table()
        first = embedder.column_embedding(table, 0)
        second = embedder.column_embedding(table, 0)
        assert np.allclose(first, second)
        embedder.clear_cache()
        third = embedder.column_embedding(table, 0)
        assert np.allclose(first, third)


class TestPersistence:
    def test_save_load_roundtrip(self, embedder, tmp_path):
        embedder.save(tmp_path / "ckpt")
        loaded = TabBiNEmbedder.load(tmp_path / "ckpt", TabBiNConfig.tiny())
        table = table1_nested()
        assert np.allclose(
            embedder.column_embedding(table, 0),
            loaded.column_embedding(table, 0),
        )
        assert np.allclose(
            embedder.table_embedding(table),
            loaded.table_embedding(table),
        )


class TestComposites:
    def test_numeric_composite_shape(self, embedder):
        ce = numeric_composite(embedder, "OS", 20.3, "months")
        assert ce.shape == (3 * embedder.hidden,)

    def test_range_composite_shape(self, embedder):
        ce = range_composite(embedder, "Age", 20, 30, "year")
        assert ce.shape == (4 * embedder.hidden,)

    def test_gaussian_composite_shape(self, embedder):
        ce = gaussian_composite(embedder, "BMI", 24.5, 3.1, None)
        assert ce.shape == (4 * embedder.hidden,)

    def test_value_composite_uniform_width(self, embedder):
        """All shapes dispatch to a 4-block CE, comparable by cosine."""
        widths = set()
        for text in ("20.3 months", "20-30 year", "12.3 ± 4.5", "colon"):
            ce = value_composite(embedder, "attr", parse_value(text))
            widths.add(ce.shape[0])
        assert widths == {4 * embedder.hidden}

    def test_unit_changes_composite(self, embedder):
        a = numeric_composite(embedder, "OS", 20.3, "months")
        b = numeric_composite(embedder, "OS", 20.3, "mg")
        assert not np.allclose(a, b)
