"""Embedding layer and TabBiN model tests, including ablations."""

import numpy as np
import pytest

from repro.core import TabBiNConfig
from repro.core.embedding_layer import TabBiNEmbedding
from repro.core.model import TabBiNModel
from repro.tables import figure1_table, table2_relational


def batch_for(serializer, tokenizer, table, segment="row"):
    sequences = serializer.serialize(table, segment)
    arrays = TabBiNEmbedding.batch_arrays(sequences, tokenizer.vocab.pad_id)
    return sequences, arrays


class TestEmbeddingLayer:
    def test_requires_vocab(self):
        with pytest.raises(ValueError):
            TabBiNEmbedding(TabBiNConfig.tiny())

    def test_hidden_divisibility_enforced(self):
        with pytest.raises(ValueError):
            TabBiNConfig(hidden=50)

    def test_output_shape(self, serializer, tokenizer, config):
        emb = TabBiNEmbedding(config, rng=np.random.default_rng(0))
        _seqs, arrays = batch_for(serializer, tokenizer, figure1_table())
        token_ids, numeric, cell_pos, coords, type_ids, features, _valid = arrays
        out = emb(token_ids, numeric, cell_pos, coords, type_ids, features)
        assert out.shape == (*token_ids.shape, config.hidden)

    def test_six_components_change_output(self, serializer, tokenizer, config):
        """Perturbing each feature stream changes the embedding."""
        emb = TabBiNEmbedding(config, rng=np.random.default_rng(0))
        emb.eval()
        _seqs, arrays = batch_for(serializer, tokenizer, figure1_table())
        token_ids, numeric, cell_pos, coords, type_ids, features, _valid = arrays
        base = emb(token_ids, numeric, cell_pos, coords, type_ids, features).data

        for stream, arr in [("numeric", numeric), ("cell_pos", cell_pos),
                            ("coords", coords), ("type_ids", type_ids)]:
            changed = arr.copy()
            changed.flat[0] = (changed.flat[0] + 1) % 5
            kwargs = dict(token_ids=token_ids, numeric=numeric,
                          cell_pos=cell_pos, coords=coords,
                          type_ids=type_ids, features=features)
            kwargs[stream] = changed
            out = emb(**kwargs).data
            assert not np.allclose(out, base), stream

        flipped = features.copy()
        flipped[0, 0, 0] = 1 - flipped[0, 0, 0]
        out = emb(token_ids, numeric, cell_pos, coords, type_ids, flipped).data
        assert not np.allclose(out, base)

    @pytest.mark.parametrize("component,stream_index", [
        ("coords", 3), ("type", 4), ("units_nesting", 5),
    ])
    def test_ablations_silence_their_stream(self, serializer, tokenizer,
                                            config, component, stream_index):
        ablated_config = config.ablate(component)
        emb = TabBiNEmbedding(ablated_config, rng=np.random.default_rng(0))
        emb.eval()
        _seqs, arrays = batch_for(serializer, tokenizer, figure1_table())
        token_ids, numeric, cell_pos, coords, type_ids, features, _valid = arrays
        base = emb(token_ids, numeric, cell_pos, coords, type_ids, features).data
        # Changing the ablated stream must not change the output.
        if component == "coords":
            changed = coords.copy(); changed += 1
            out = emb(token_ids, numeric, cell_pos, changed, type_ids, features).data
        elif component == "type":
            changed = (type_ids + 1) % 14
            out = emb(token_ids, numeric, cell_pos, coords, changed, features).data
        else:
            changed = 1 - features
            out = emb(token_ids, numeric, cell_pos, coords, type_ids, changed).data
        assert np.allclose(out, base)

    def test_unknown_ablation_rejected(self, config):
        with pytest.raises(ValueError):
            config.ablate("nonsense")

    def test_batch_arrays_padding(self, serializer, tokenizer):
        seqs = serializer.serialize(figure1_table(), "row")
        seqs += serializer.serialize(table2_relational(), "row")
        arrays = TabBiNEmbedding.batch_arrays(seqs, tokenizer.vocab.pad_id)
        token_ids, *_rest, valid = arrays
        assert token_ids.shape[0] == len(seqs)
        lengths = [len(s) for s in seqs]
        assert token_ids.shape[1] == max(lengths)
        for b, n in enumerate(lengths):
            assert valid[b, :n].all()
            assert not valid[b, n:].any()
            assert (token_ids[b, n:] == tokenizer.vocab.pad_id).all()

    def test_empty_batch_rejected(self, tokenizer):
        with pytest.raises(ValueError):
            TabBiNEmbedding.batch_arrays([], tokenizer.vocab.pad_id)


class TestModel:
    def test_forward_shapes(self, model, serializer):
        seqs = serializer.serialize(figure1_table(), "row")
        hidden, valid = model(seqs)
        assert hidden.shape == (len(seqs), max(len(s) for s in seqs),
                                model.config.hidden)
        assert valid.shape == hidden.shape[:2]

    def test_override_shape_checked(self, model, serializer):
        seqs = serializer.serialize(figure1_table(), "row")
        with pytest.raises(ValueError):
            model(seqs, token_ids_override=np.zeros((1, 1), dtype=np.int64))

    def test_mlm_logits_shape(self, model, serializer, config):
        seqs = serializer.serialize(table2_relational(), "row")
        hidden, _valid = model(seqs)
        logits = model.mlm_logits(hidden)
        assert logits.shape[-1] == config.vocab_size

    def test_encode_pooled_covers_all_refs(self, model, serializer):
        seqs = serializer.serialize(table2_relational(), "row")
        pooled = model.encode_pooled(seqs)
        assert len(pooled) == len(seqs)
        for seq, mapping in zip(seqs, pooled):
            assert set(mapping) == set(range(len(seq.cell_refs)))
            for vector in mapping.values():
                assert vector.shape == (model.config.hidden,)
                assert np.isfinite(vector).all()

    def test_pad_tokens_do_not_change_real_outputs(self, model, serializer):
        """Batching a short sequence with a long one must not alter it."""
        short = serializer.serialize(table2_relational(), "row")
        long = serializer.serialize(figure1_table(), "row")
        alone = model(short)[0].data[0]
        together = model(short + long)[0].data[0]
        n = len(short[0])
        assert np.allclose(alone[:n], together[:n], atol=1e-10)

    def test_visibility_ablation_changes_output(self, serializer, tokenizer,
                                                config):
        seqs = serializer.serialize(figure1_table(), "row")
        m1 = TabBiNModel(config, pad_id=tokenizer.vocab.pad_id,
                         rng=np.random.default_rng(1))
        m1.eval()
        m2 = TabBiNModel(config.ablate("visibility"),
                         pad_id=tokenizer.vocab.pad_id,
                         rng=np.random.default_rng(1))
        m2.eval()
        out1 = m1(seqs)[0].data
        out2 = m2(seqs)[0].data
        assert not np.allclose(out1, out2)
