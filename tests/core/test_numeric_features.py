"""Numeric feature extraction — anchored to the paper's worked example."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.numeric_features import NULL_FEATURES, numeric_features


class TestPaperExample:
    def test_20_point_3(self):
        """Section 3.1: 'number 20.3 ... is encoded as (2, 2, 2, 3)'."""
        assert numeric_features(20.3) == (2, 2, 2, 3)


class TestFeatureRules:
    @pytest.mark.parametrize("value,expected", [
        (7.0, (1, 1, 7, 7)),
        (42.0, (2, 1, 4, 2)),
        (118.0, (3, 1, 1, 8)),
        (0.5, (1, 2, 5, 5)),
        (3.14, (1, 3, 3, 4)),
        (-20.3, (2, 2, 2, 3)),     # sign ignored
        (0.0, (1, 1, 0, 0)),
    ])
    def test_known_values(self, value, expected):
        assert numeric_features(value) == expected

    def test_magnitude_clamped_at_10(self):
        mag, _pre, _fst, _lst = numeric_features(1e15)
        assert mag == 10

    def test_precision_clamped(self):
        _mag, pre, _fst, _lst = numeric_features(0.123456789012)
        assert pre <= 10

    def test_non_finite_gives_null(self):
        assert numeric_features(math.inf) == NULL_FEATURES
        assert numeric_features(math.nan) == NULL_FEATURES

    @settings(max_examples=80, deadline=None)
    @given(st.floats(min_value=-1e9, max_value=1e9,
                     allow_nan=False, allow_infinity=False))
    def test_ranges_always_valid(self, x):
        mag, pre, fst, lst = numeric_features(x)
        assert 1 <= mag <= 10
        assert 1 <= pre <= 10
        assert 0 <= fst <= 10
        assert 0 <= lst <= 10

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=1, max_value=999_999))
    def test_integers_have_precision_one(self, n):
        _mag, pre, fst, lst = numeric_features(float(n))
        assert pre == 1
        digits = str(n)
        assert fst == int(digits[0])
        assert lst == int(digits[-1])
