"""Fuzz ``merge_ranked`` against a sorted-concatenation oracle.

``merge_ranked`` is the reduce step of every sharded fan-out query, so
its ordering contract — best score first, exact ties broken by item
ascending — must hold for *any* pre-sorted inputs, not just the ones
real indexes produce.  The oracle is the obviously-correct
implementation: concatenate everything, sort by ``(-score, item)``,
truncate to k.  Scores are drawn from a deliberately tiny pool so
exact ties (including whole tied blocks straddling the k boundary) are
the common case, not the measure-zero one.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.retrieval import merge_ranked

#: Tiny score pool -> dense exact ties.  Includes negatives and zero
#: (cosine scores span [-1, 1]).
TIED_SCORES = st.sampled_from((-1.0, -0.5, 0.0, 0.5, 0.5, 1.0))

#: Small key alphabet -> the same item can appear in several rankings
#: (a manually assembled layout may hold one key in two shards).
KEYS = st.text(alphabet="abcdef", min_size=1, max_size=3)


def oracle(rankings: list[list[tuple]], k: int) -> list[tuple]:
    flat = [pair for ranking in rankings for pair in ranking]
    flat.sort(key=lambda pair: (-pair[1], pair[0]))
    return flat[:k]


def sorted_rankings(scores=TIED_SCORES):
    """Lists of rankings, each pre-sorted the way shards emit them."""
    ranking = st.lists(st.tuples(KEYS, scores), max_size=12).map(
        lambda pairs: sorted(pairs, key=lambda pair: (-pair[1], pair[0])))
    return st.lists(ranking, max_size=6)


class TestMergeRankedFuzz:
    @settings(max_examples=200, deadline=None)
    @given(rankings=sorted_rankings(), k=st.integers(1, 20))
    def test_matches_sorted_concat_oracle_under_ties(self, rankings, k):
        assert merge_ranked(rankings, k) == oracle(rankings, k)

    @settings(max_examples=100, deadline=None)
    @given(rankings=sorted_rankings(
               scores=st.floats(-1.0, 1.0, allow_nan=False)),
           k=st.integers(1, 20))
    def test_matches_oracle_on_continuous_scores(self, rankings, k):
        assert merge_ranked(rankings, k) == oracle(rankings, k)

    @settings(max_examples=100, deadline=None)
    @given(rankings=sorted_rankings(), k=st.integers(1, 20))
    def test_merge_is_input_order_invariant(self, rankings, k):
        """Which shard contributed a ranking must never matter."""
        assert merge_ranked(list(reversed(rankings)), k) == \
            merge_ranked(rankings, k)

    @settings(max_examples=50, deadline=None)
    @given(rankings=sorted_rankings(), k=st.integers(1, 20))
    def test_prefix_consistency(self, rankings, k):
        """The top-(k-1) is always a prefix of the top-k: a larger ask
        may extend the ranking but never reorder it."""
        if k > 1:
            assert merge_ranked(rankings, k)[:k - 1] == \
                merge_ranked(rankings, k - 1)
