"""Cosine similarity, LSH blocking, and cluster formation tests."""

import numpy as np
import pytest

from repro.retrieval import (
    CosineLSH,
    centroid_ranking,
    cosine_matrix,
    cosine_similarity,
    normalize_rows,
    rank_neighbors,
    top_k,
    top_k_cluster,
    topic_centroid,
)

RNG = np.random.default_rng(9)


class TestSimilarity:
    def test_cosine_identity(self):
        v = RNG.standard_normal(8)
        assert cosine_similarity(v, v) == pytest.approx(1.0)
        assert cosine_similarity(v, -v) == pytest.approx(-1.0)

    def test_cosine_orthogonal(self):
        assert cosine_similarity([1, 0], [0, 1]) == pytest.approx(0.0)

    def test_zero_vector_is_zero_similarity(self):
        assert cosine_similarity(np.zeros(4), np.ones(4)) == 0.0

    def test_normalize_rows(self):
        m = RNG.standard_normal((5, 4)) * 10
        normed = normalize_rows(m)
        assert np.allclose(np.linalg.norm(normed, axis=1), 1.0)
        zeros = normalize_rows(np.zeros((2, 3)))
        assert np.allclose(zeros, 0.0)

    def test_cosine_matrix_shape_and_values(self):
        a = RNG.standard_normal((3, 6))
        m = cosine_matrix(a, a)
        assert m.shape == (3, 3)
        assert np.allclose(np.diag(m), 1.0)

    def test_top_k_excludes_query(self):
        items = np.eye(4)
        result = top_k(items[0], items, k=3, exclude=0)
        assert 0 not in [i for i, _s in result]

    def test_top_k_orders_by_similarity(self):
        items = np.array([[1, 0], [0.9, 0.1], [0, 1.0]])
        result = top_k(np.array([1.0, 0.0]), items, k=3)
        assert [i for i, _s in result][:2] == [0, 1]

    def test_top_k_caps_at_collection_size(self):
        items = RNG.standard_normal((3, 4))
        assert len(top_k(items[0], items, k=10)) == 3

    def test_top_k_with_exclusion_still_returns_k(self):
        """Regression: the excluded self-match used to occupy a slot in
        the top-k slice and get filtered afterwards, shrinking results."""
        items = RNG.standard_normal((10, 4))
        result = top_k(items[0], items, k=5, exclude=0)
        assert len(result) == 5
        assert 0 not in [i for i, _s in result]

    def test_top_k_exclusion_caps_at_remaining(self):
        items = RNG.standard_normal((4, 3))
        assert len(top_k(items[0], items, k=10, exclude=0)) == 3


class TestLSH:
    def test_candidates_include_near_duplicates(self):
        lsh = CosineLSH(dim=16, n_planes=6, n_bands=6, seed=0)
        base = RNG.standard_normal(16)
        lsh.add(base)
        lsh.add(base + RNG.standard_normal(16) * 0.01)
        lsh.add(-base)
        candidates = lsh.candidates(base)
        assert 0 in candidates and 1 in candidates

    def test_query_finds_planted_duplicates(self):
        """With genuine near-duplicates, LSH top-1 matches brute force.

        (Pure random gaussians have no meaningful neighbours, so this
        plants a near-copy for each query.)
        """
        base = RNG.standard_normal((20, 12))
        noisy = base + RNG.standard_normal((20, 12)) * 0.05
        vectors = np.vstack([base, noisy])
        lsh = CosineLSH(dim=12, n_planes=6, n_bands=8, seed=1)
        lsh.add_all(vectors)
        hits = 0
        for q in range(20):
            got = lsh.query(vectors[q], k=1, exclude=q)[0][0]
            want = top_k(vectors[q], vectors, k=1, exclude=q)[0][0]
            hits += got == want
        assert hits >= 18  # LSH is approximate; near-duplicates must hit

    def test_fallback_to_bruteforce_when_few_candidates(self):
        lsh = CosineLSH(dim=8, n_planes=10, n_bands=1, seed=0)
        vectors = RNG.standard_normal((10, 8))
        lsh.add_all(vectors)
        # Even if buckets are tiny, query returns k results.
        assert len(lsh.query(vectors[0], k=5, exclude=0)) == 5

    def test_dimension_check(self):
        lsh = CosineLSH(dim=8)
        with pytest.raises(ValueError):
            lsh.add(np.ones(5))

    def test_query_partial_reports_candidates_without_fallback(self):
        from repro.retrieval import merge_ranked

        lsh = CosineLSH(dim=8, n_planes=10, n_bands=1, seed=0)
        vectors = RNG.standard_normal((10, 8))
        lsh.add_all(vectors)
        n_candidates, ranked = lsh.query_partial(vectors[0], k=5)
        assert len(ranked) <= n_candidates          # no brute-force top-up
        assert ranked == sorted(ranked, key=lambda p: (-p[1], p[0]))
        # query() == partial when candidates suffice, brute force otherwise
        if n_candidates >= 5:
            assert lsh.query(vectors[0], k=5) == ranked
        else:
            assert lsh.query(vectors[0], k=5) == lsh.query_brute(vectors[0], k=5)
        # merging the single partial with empties reproduces it
        assert merge_ranked([ranked, [], []], 5) == ranked

    def test_query_many_matches_serial_queries(self):
        """The LSH-level batched path: same candidates (shared hashing
        kernel), same rankings, same per-query fallback as N serial
        query() calls."""
        lsh = CosineLSH(dim=8, n_planes=6, n_bands=2, seed=0)
        vectors = RNG.standard_normal((30, 8))
        lsh.add_all(vectors)
        queries = RNG.standard_normal((6, 8))
        for k in (1, 3, 12, 35):
            want = [lsh.query(q, k=k) for q in queries]
            got = lsh.query_many(queries, k=k)
            assert [[i for i, _s in r] for r in got] == \
                [[i for i, _s in r] for r in want]
            for got_r, want_r in zip(got, want):
                for (_gi, gs), (_wi, ws) in zip(got_r, want_r):
                    assert gs == pytest.approx(ws, abs=1e-12)
        # candidates are bit-identical, so counts agree too
        partials = lsh.query_partial_many(queries, 5)
        for (count, _r), q in zip(partials, queries):
            assert count == lsh.query_partial(q, 5)[0]

    def test_query_many_excludes_and_validation(self):
        lsh = CosineLSH(dim=8, n_planes=4, n_bands=2, seed=0)
        vectors = RNG.standard_normal((10, 8))
        lsh.add_all(vectors)
        queries = vectors[:2]
        got = lsh.query_many(queries, k=10, excludes=[0, None])
        assert 0 not in [i for i, _s in got[0]]
        assert 0 in [i for i, _s in got[1]]
        with pytest.raises(ValueError, match="align"):
            lsh.query_many(queries, k=2, excludes=[0])
        with pytest.raises(ValueError, match="at least 1"):
            lsh.query_many(queries, k=0)
        with pytest.raises(ValueError, match="query matrix"):
            lsh.query_many(np.ones(8), k=2)

    def test_merge_ranked_global_top_k(self):
        from repro.retrieval import merge_ranked

        left = [("a", 0.9), ("c", 0.5), ("e", 0.1)]
        right = [("b", 0.8), ("d", 0.5), ("f", 0.0)]
        merged = merge_ranked([left, right], 4)
        assert merged == [("a", 0.9), ("b", 0.8), ("c", 0.5), ("d", 0.5)]
        with pytest.raises(ValueError, match="at least 1"):
            merge_ranked([left], 0)

    def test_query_k_below_one_rejected(self):
        lsh = CosineLSH(dim=4)
        lsh.add(np.ones(4))
        for method in (lsh.query, lsh.query_brute):
            with pytest.raises(ValueError, match="at least 1"):
                method(np.ones(4), k=0)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            CosineLSH(dim=0)

    def test_too_many_planes_rejected(self):
        """Packed int64 band keys hold at most 63 sign bits — more would
        silently collide buckets."""
        with pytest.raises(ValueError):
            CosineLSH(dim=8, n_planes=64)
        CosineLSH(dim=8, n_planes=63)  # at the limit is fine

    def test_len(self):
        lsh = CosineLSH(dim=4)
        lsh.add_all(RNG.standard_normal((7, 4)))
        assert len(lsh) == 7

    def test_add_all_matches_sequential_add(self):
        """The vectorized bulk insert must land vectors in the same
        buckets, in the same order, as one-at-a-time adds."""
        vectors = RNG.standard_normal((25, 10))
        bulk = CosineLSH(dim=10, n_planes=7, n_bands=5, seed=4)
        ids = bulk.add_all(vectors)
        one = CosineLSH(dim=10, n_planes=7, n_bands=5, seed=4)
        for v in vectors:
            one.add(v)
        assert ids == list(range(25))
        assert bulk._tables == one._tables
        query = RNG.standard_normal(10)
        assert bulk.candidates(query) == one.candidates(query)

    def test_add_all_returns_offset_ids(self):
        lsh = CosineLSH(dim=4)
        lsh.add(RNG.standard_normal(4))
        assert lsh.add_all(RNG.standard_normal((3, 4))) == [1, 2, 3]

    def test_add_all_rejects_bad_shape(self):
        lsh = CosineLSH(dim=4)
        with pytest.raises(ValueError):
            lsh.add_all(RNG.standard_normal((3, 5)))
        with pytest.raises(ValueError):
            lsh.add_all(RNG.standard_normal(4))

    def test_inserted_vectors_are_copies(self):
        """Mutating the caller's array after insert must not corrupt the
        index (float64 inputs used to be stored as views)."""
        lsh = CosineLSH(dim=4, seed=0)
        matrix = np.ones((2, 4))
        lsh.add_all(matrix)
        single = np.ones(4)
        lsh.add(single)
        matrix[:] = -100.0
        single[:] = -100.0
        assert np.allclose(lsh.vectors(), 1.0)
        assert lsh.query(np.ones(4), k=3)[0][1] == pytest.approx(1.0)

    def test_vectors_accessor(self):
        lsh = CosineLSH(dim=3)
        assert lsh.vectors().shape == (0, 3)
        v = RNG.standard_normal(3)
        idx = lsh.add(v)
        assert np.allclose(lsh.vector(idx), v)
        assert lsh.vectors().shape == (1, 3)


class TestClustering:
    def test_rank_neighbors_without_lsh(self):
        vectors = np.eye(5)
        neighbors = rank_neighbors(0, vectors, k=3)
        assert len(neighbors) == 3
        assert 0 not in neighbors

    def test_rank_neighbors_with_lsh_matches_top1(self):
        vectors = RNG.standard_normal((40, 10))
        lsh = CosineLSH(dim=10, n_planes=5, n_bands=8, seed=2)
        lsh.add_all(vectors)
        plain = rank_neighbors(3, vectors, k=1)
        blocked = rank_neighbors(3, vectors, k=1, lsh=lsh)
        assert plain[0] == blocked[0]

    def test_top_k_cluster_is_neighbor_list(self):
        vectors = RNG.standard_normal((10, 4))
        assert top_k_cluster(2, vectors, k=4) == rank_neighbors(2, vectors, k=4)

    def test_centroid_ranking_prefers_members(self):
        cluster = RNG.standard_normal(6) * 0.1 + np.array([5, 0, 0, 0, 0, 0])
        members = np.stack([cluster + RNG.standard_normal(6) * 0.1 for _ in range(4)])
        outliers = RNG.standard_normal((4, 6)) + np.array([0, 5, 0, 0, 0, 0])
        vectors = np.vstack([members, outliers])
        centroid = topic_centroid(vectors, [0, 1])
        ranked = centroid_ranking(centroid, vectors, k=4)
        assert set(ranked) == {0, 1, 2, 3}

    def test_topic_centroid_requires_members(self):
        with pytest.raises(ValueError):
            topic_centroid(np.eye(3), [])
