"""Catalog-routed serving: many named indexes behind one server.

The load-bearing properties, each pinned here end-to-end over real
sockets:

- **Routing**: ``{"index": name}`` answers from exactly that entry —
  rankings identical to that entry's offline ``query_many``, keys never
  bleeding in from any other entry — and an unknown name is a 404 that
  lists what the catalog does have.
- **Back-compat, byte-for-byte**: a request *without* an ``"index"``
  field against a catalog server returns the very same response bytes
  (headers and body) the pre-catalog bare-index server returns for it.
- **Observability**: ``GET /indexes`` lists every entry with its
  open/closed state; ``GET /stats`` grows per-index sections; the
  aggregate sections keep their old meaning.
- **Eviction under load**: with ``max_open=1``, alternating traffic
  across two entries forces open/evict churn mid-flight without ever
  changing a ranking.
"""

import json
import os
import signal
import subprocess
import sys
import threading
from pathlib import Path

import numpy as np
import pytest
from serveutil import (
    http_request,
    offline_ranking,
    post_query,
    served_ranking,
)

from repro.catalog import Catalog, CatalogEntry
from repro.index import ColumnIndex, TableIndex, open_index, save_index

DIM = 16

#: Entry name -> (index class, key prefix, corpus size, seed).  Key
#: prefixes are disjoint so any cross-index bleed is instantly visible
#: in the returned keys, not just in scores.
ENTRIES = {
    "tables": (TableIndex, "tbl", 48, 3),
    "columns": (ColumnIndex, "col", 72, 4),
}


def build_catalog(root: Path) -> Catalog:
    """A two-entry catalog — one table-level, one column-level index —
    with disjoint key namespaces, saved under ``root``."""
    catalog = Catalog(root=root)
    for name, (cls, prefix, n, seed) in ENTRIES.items():
        rng = np.random.default_rng(seed)
        index = cls(DIM, seed=seed)
        index.model_id = f"ckpt-{name}"
        keys = [f"{prefix}{i:04d}" for i in range(n)]
        index.add_batch(keys, rng.standard_normal((n, DIM)),
                        metas=[{} for _ in keys])
        save_index(index, root / f"{name}.npz")
        catalog.add(CatalogEntry(name=name, path=f"{name}.npz",
                                 kind=index.kind, model_id=index.model_id,
                                 default=name == "tables"))
    catalog.save()
    return catalog


@pytest.fixture(scope="module")
def catalog_dir(tmp_path_factory):
    root = tmp_path_factory.mktemp("catalog")
    build_catalog(root)
    return root


@pytest.fixture(scope="module")
def queries():
    return np.random.default_rng(9).standard_normal((5, DIM))


def offline_want(catalog_dir, name, queries, k):
    index = open_index(catalog_dir / f"{name}.npz")
    return [offline_ranking(hits) for hits in index.query_many(queries, k=k)]


def server_thread(catalog_dir, **kwargs):
    from repro.serve import ServerThread

    kwargs.setdefault("max_wait_ms", 1.0)
    return ServerThread(Catalog.load(catalog_dir), **kwargs)


class TestRouting:
    def test_each_entry_matches_its_offline_ranking(self, catalog_dir,
                                                    queries):
        with server_thread(catalog_dir) as handle:
            for name in ENTRIES:
                want = offline_want(catalog_dir, name, queries, k=4)
                status, payload = post_query(
                    handle.port, {"vectors": queries.tolist(), "k": 4,
                                  "index": name})
                assert status == 200
                got = [served_ranking(result["hits"])
                       for result in payload["results"]]
                assert got == want, f"routed rankings diverged for {name!r}"

    def test_absent_index_field_hits_the_default(self, catalog_dir, queries):
        want = offline_want(catalog_dir, "tables", queries, k=3)
        with server_thread(catalog_dir) as handle:
            status, payload = post_query(
                handle.port, {"vectors": queries.tolist(), "k": 3})
        assert status == 200
        assert [served_ranking(r["hits"]) for r in payload["results"]] == want

    def test_keys_never_bleed_between_entries(self, catalog_dir, queries):
        with server_thread(catalog_dir) as handle:
            for name, (_cls, prefix, _n, _seed) in ENTRIES.items():
                _status, payload = post_query(
                    handle.port, {"vectors": queries.tolist(), "k": 8,
                                  "index": name})
                keys = [hit["key"] for result in payload["results"]
                        for hit in result["hits"]]
                assert keys and all(key.startswith(prefix) for key in keys)

    def test_unknown_index_is_404_naming_the_catalog(self, catalog_dir,
                                                     queries):
        with server_thread(catalog_dir) as handle:
            status, payload = post_query(
                handle.port, {"vector": queries[0].tolist(), "index": "nope"})
        assert status == 404
        assert "'nope'" in payload["error"]
        for name in ENTRIES:
            assert repr(name) in payload["error"]

    def test_non_string_index_is_400(self, catalog_dir, queries):
        with server_thread(catalog_dir) as handle:
            for bad in (7, "", ["tables"]):
                status, payload = post_query(
                    handle.port, {"vector": queries[0].tolist(),
                                  "index": bad})
                assert status == 400
                assert "non-empty string" in payload["error"]

    def test_dim_validates_against_the_routed_entry(self, tmp_path):
        """Entries of different dims: the 'wrong dim' error must name
        the *routed* index's dim, proving validation happens after
        routing."""
        catalog = Catalog(root=tmp_path)
        for name, dim in (("narrow", 4), ("wide", 12)):
            from repro.index import VectorIndex

            index = VectorIndex(dim, seed=1)
            rng = np.random.default_rng(1)
            index.add_batch([f"{name}{i}" for i in range(9)],
                            rng.standard_normal((9, dim)))
            save_index(index, tmp_path / f"{name}.npz")
            catalog.add(CatalogEntry(name=name, path=f"{name}.npz",
                                     kind="vector"))
        catalog.save()
        from repro.serve import ServerThread

        with ServerThread(catalog, max_wait_ms=1.0) as handle:
            status, payload = post_query(
                handle.port, {"vector": [0.0] * 4, "index": "wide"})
            assert status == 400 and "expects 12" in payload["error"]
            status, _payload = post_query(
                handle.port, {"vector": [0.0] * 4, "index": "narrow"})
            assert status == 200


class TestWireBackCompat:
    def raw_query(self, port: int, body: bytes) -> bytes:
        """One request over a raw socket, full response bytes back —
        headers included, so the comparison is truly byte-for-byte."""
        import socket

        head = (f"POST /query HTTP/1.1\r\nHost: x\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n").encode()
        with socket.create_connection(("127.0.0.1", port),
                                      timeout=30) as sock:
            sock.sendall(head + body)
            response = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    return response
                response += chunk

    def test_nameless_request_is_byte_identical_to_bare_serve(
            self, catalog_dir, queries):
        """The PR 5 regression pin: a client that has never heard of
        catalogs sends the same bytes and receives the same bytes,
        whether the server wraps a bare index or a catalog whose
        default is that index."""
        from repro.serve import ServerThread

        bodies = [json.dumps({"vector": queries[0].tolist(),
                              "k": 5}).encode(),
                  json.dumps({"vectors": queries.tolist(), "k": 3,
                              "excludes": [None] * len(queries)}).encode()]
        bare = open_index(catalog_dir / "tables.npz", mmap=True)
        with ServerThread(bare, max_wait_ms=1.0) as bare_handle:
            bare_responses = [self.raw_query(bare_handle.port, body)
                              for body in bodies]
        with server_thread(catalog_dir) as cat_handle:
            cat_responses = [self.raw_query(cat_handle.port, body)
                             for body in bodies]
        assert bare_responses == cat_responses

    def test_bare_server_wire_shape_is_unchanged(self, catalog_dir, queries):
        """The response body is exactly ``render_response(200,
        json_body({"hits": format_hits(offline)}))`` — the wire shape
        PR 5 promised, reconstructed independently of the server."""
        from repro.serve import ServerThread
        from repro.serve.protocol import format_hits, json_body

        index = open_index(catalog_dir / "tables.npz", mmap=True)
        offline = open_index(catalog_dir / "tables.npz")
        want_hits = offline.query_many(queries[:1], k=5)[0]
        want_body = json_body({"hits": format_hits(want_hits)})
        body = json.dumps({"vector": queries[0].tolist(), "k": 5}).encode()
        with ServerThread(index, max_wait_ms=1.0) as handle:
            raw = self.raw_query(handle.port, body)
        assert raw.partition(b"\r\n\r\n")[2] == want_body


class TestIndexesAndStats:
    def test_indexes_lists_entries_without_opening_them(self, catalog_dir):
        with server_thread(catalog_dir) as handle:
            status, data = http_request(handle.port, "GET", "/indexes")
            assert http_request(handle.port, "POST", "/indexes",
                                b"{}")[0] == 405
        assert status == 200
        listing = {item["name"]: item for item in json.loads(data)["indexes"]}
        assert set(listing) == set(ENTRIES)
        # Boot opens the default entry only; listing must not have
        # force-opened the other one.
        assert listing["tables"]["open"] is True
        assert listing["tables"]["default"] is True
        assert listing["tables"]["entries"] == ENTRIES["tables"][2]
        assert listing["columns"]["open"] is False
        assert listing["columns"]["entries"] is None
        assert listing["columns"]["model_id"] == "ckpt-columns"

    def test_stats_grows_per_index_sections(self, catalog_dir, queries):
        with server_thread(catalog_dir) as handle:
            post_query(handle.port, {"vectors": queries.tolist(), "k": 2})
            post_query(handle.port, {"vector": queries[0].tolist(),
                                     "index": "columns"})
            _status, data = http_request(handle.port, "GET", "/stats")
        snapshot = json.loads(data)
        per_index = snapshot["indexes"]
        assert set(per_index) == set(ENTRIES)
        assert per_index["tables"]["queries"] == len(queries)
        assert per_index["tables"]["requests"] == 1
        assert per_index["tables"]["opens"] == 1
        assert per_index["columns"]["queries"] == 1
        assert per_index["columns"]["batch"]["dispatched"] >= 1
        # Aggregates keep meaning "all traffic".
        assert snapshot["queries_total"] == len(queries) + 1
        assert snapshot["batch"]["dispatched"] >= 2
        assert snapshot["dispatcher"]["max_batch"] == 32

    def test_healthz_reports_default_and_catalog_size(self, catalog_dir):
        with server_thread(catalog_dir) as handle:
            _status, data = http_request(handle.port, "GET", "/healthz")
        payload = json.loads(data)
        assert payload["kind"] == "table"
        assert payload["model_id"] == "ckpt-tables"
        assert payload["indexes"] == len(ENTRIES)


class TestEvictionUnderLoad:
    def test_alternating_traffic_with_cap_one_keeps_rankings(
            self, catalog_dir, queries):
        """max_open=1 under concurrent two-index traffic: every response
        still matches its entry's offline ranking, and /stats shows the
        churn actually happened."""
        want = {name: offline_want(catalog_dir, name, queries, k=5)
                for name in ENTRIES}
        errors: list[str] = []

        def client(name: str, rounds: int) -> None:
            for _ in range(rounds):
                status, payload = post_query(
                    handle.port, {"vectors": queries.tolist(), "k": 5,
                                  "index": name})
                if status != 200:
                    errors.append(f"{name}: status {status}")
                    return
                got = [served_ranking(r["hits"])
                       for r in payload["results"]]
                if got != want[name]:
                    errors.append(f"{name}: ranking diverged")
                    return

        with server_thread(catalog_dir, max_open=1) as handle:
            threads = [threading.Thread(target=client, args=(name, 8))
                       for name in ENTRIES for _ in range(2)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            _status, data = http_request(handle.port, "GET", "/stats")
        assert not errors, errors
        per_index = json.loads(data)["indexes"]
        total_evictions = sum(section["evictions"]
                              for section in per_index.values())
        total_opens = sum(section["opens"]
                          for section in per_index.values())
        assert total_evictions >= 1, per_index
        assert total_opens >= 3, per_index


class TestCatalogServeCli:
    def test_cli_serves_a_catalog_end_to_end(self, catalog_dir, queries):
        """`repro.cli serve CATALOG_DIR`: boots, prints the catalog
        banner, routes queries by name, and drains on SIGTERM."""
        want = offline_want(catalog_dir, "columns", queries[:2], k=3)
        env = dict(os.environ)
        env["PYTHONPATH"] = (str(Path(__file__).resolve().parents[2] / "src")
                             + os.pathsep + env.get("PYTHONPATH", ""))
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", str(catalog_dir),
             "--port", "0", "--max-wait-ms", "1", "--max-open", "1"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True)
        try:
            banner = process.stdout.readline()
            assert "Serving catalog of 2 indexes" in banner, banner
            assert "default 'tables'" in banner
            port = int(banner.split("http://127.0.0.1:")[1].split()[0])
            status, data = http_request(port, "GET", "/indexes")
            assert status == 200
            assert len(json.loads(data)["indexes"]) == 2
            status, payload = post_query(
                port, {"vectors": queries[:2].tolist(), "k": 3,
                       "index": "columns"})
            assert status == 200
            assert [served_ranking(r["hits"])
                    for r in payload["results"]] == want
        finally:
            process.send_signal(signal.SIGTERM)
            stdout, stderr = process.communicate(timeout=30)
        assert process.returncode == 0, stderr
        assert "Draining" in stdout

    def test_cli_refuses_empty_and_broken_catalogs(self, capsys, tmp_path):
        from repro.cli import main

        empty = tmp_path / "empty"
        assert main(["catalog", "init", str(empty)]) == 0
        assert main(["serve", str(empty)]) == 2
        broken = tmp_path / "broken"
        broken.mkdir()
        (broken / "catalog.json").write_text("{nope")
        assert main(["serve", str(broken)]) == 2
        err = capsys.readouterr().err
        assert "empty catalog" in err and "not valid JSON" in err

    def test_cli_refuses_catalog_with_missing_default_layout(self, capsys,
                                                             tmp_path):
        """A catalog whose default entry's layout is gone must fail at
        boot with a clear error, not 500 on the first query."""
        from repro.cli import main

        catalog = Catalog(root=tmp_path)
        catalog.add(CatalogEntry(name="gone", path="gone.npz",
                                 kind="vector"))
        catalog.save()
        assert main(["serve", str(tmp_path)]) == 2
        assert "no index file" in capsys.readouterr().err
