"""Backpressure: a bounded dispatcher queue sheds load as 429 +
``Retry-After`` instead of growing toward OOM.

The deterministic lever: the backlog check is all-or-nothing on a
request's full row count *before* anything enqueues, so a single batch
request carrying more rows than ``max_backlog`` always rejects — no
racing concurrent clients needed to pin the contract.  A concurrency
test then drives real overload through sockets and checks the server
keeps serving afterwards."""

import asyncio
import json
import threading

import pytest
from serveutil import (
    http_request,
    http_request_full,
    make_corpus,
    post_query,
    save_layout,
)

from repro.index import open_index
from repro.serve import ServerThread
from repro.serve.dispatcher import (
    BacklogFull,
    MicroBatchDispatcher,
    validate_dispatch_params,
)

DIM = 24


@pytest.fixture(scope="module")
def layout(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("backpressure")
    keys, vectors = make_corpus(n=90, dim=DIM, seed=17)
    return save_layout(tmp, keys, vectors, 2, seed=17), vectors


class TestDispatcherBacklog:
    def test_validate_rejects_bad_backlog(self):
        with pytest.raises(ValueError, match="max_backlog"):
            validate_dispatch_params(32, 2.0, None, max_backlog=0)
        validate_dispatch_params(32, 2.0, None, max_backlog=1)
        validate_dispatch_params(32, 2.0, None, max_backlog=None)

    def test_constructor_rejects_bad_backlog(self, layout):
        path, _vectors = layout
        index = open_index(path)
        with pytest.raises(ValueError, match="max_backlog"):
            MicroBatchDispatcher(index, max_backlog=-1)

    def test_overflow_raises_backlog_full(self, layout):
        path, vectors = layout
        index = open_index(path)

        async def run():
            dispatcher = MicroBatchDispatcher(index, max_batch=64,
                                              max_wait_ms=1000.0,
                                              max_backlog=2)
            with pytest.raises(BacklogFull) as excinfo:
                await dispatcher.submit_many(
                    vectors[:3], 5, [None] * 3)
            assert excinfo.value.http_status == 429
            assert excinfo.value.retry_after == 1
            assert dispatcher.rejected_total == 3
            # All-or-nothing: nothing from the rejected request joined
            # the queue.
            assert dispatcher.n_pending == 0
            # The valve only sheds the overflowing request; a request
            # that fits is served (flushed by hand — max_wait_ms is
            # 1000 so the timer never fires inside the test).
            task = asyncio.ensure_future(
                dispatcher.submit_many(vectors[:2], 5, [None] * 2))
            await asyncio.sleep(0)
            dispatcher.flush_now()
            results = await task
            assert len(results) == 2
            await dispatcher.drain()

        asyncio.run(run())

    def test_unbounded_by_default(self, layout):
        path, vectors = layout
        index = open_index(path)

        async def run():
            dispatcher = MicroBatchDispatcher(index, max_batch=256,
                                              max_wait_ms=0.0)
            results = await dispatcher.submit_many(
                vectors[:60], 3, [None] * 60)
            assert len(results) == 60
            assert dispatcher.rejected_total == 0
            await dispatcher.drain()

        asyncio.run(run())


class TestServedBackpressure:
    @pytest.fixture(scope="class")
    def server(self, layout):
        path, _vectors = layout
        # max_wait_ms high + max_batch high: enqueued work sits in the
        # pending queue, so the backlog bound is the only valve.
        with ServerThread(open_index(path, mmap=True), max_batch=64,
                          max_wait_ms=50.0, max_backlog=4) as handle:
            yield handle

    def test_oversized_request_is_429_with_retry_after(self, layout,
                                                       server):
        _path, vectors = layout
        body = json.dumps({"vectors": vectors[:5].tolist(),
                           "k": 3}).encode()
        status, headers, data = http_request_full(server.port, "POST",
                                                  "/query", body)
        assert status == 429
        assert headers.get("Retry-After") == "1"
        payload = json.loads(data)
        assert "backlog" in payload["error"]

    def test_within_bound_request_succeeds(self, layout, server):
        _path, vectors = layout
        local = open_index(_path, mmap=True)
        status, payload = post_query(
            server.port, {"vectors": vectors[:2].tolist(), "k": 3})
        assert status == 200
        offline = local.query_many(vectors[:2], k=3)
        for entry, hits in zip(payload["results"], offline):
            assert [(h["key"], h["score"]) for h in entry["hits"]] == \
                   [(h.key, h.score) for h in hits]

    def test_stats_counts_rejections(self, layout, server):
        _path, vectors = layout
        body = json.dumps({"vectors": vectors[:6].tolist(),
                           "k": 3}).encode()
        http_request(server.port, "POST", "/query", body)
        status, _headers, data = http_request_full(server.port, "GET",
                                                   "/stats")
        assert status == 200
        stats = json.loads(data)
        assert stats["dispatcher"]["max_backlog"] == 4
        assert stats["dispatcher"]["rejected"] >= 5
        assert stats["responses_by_status"].get("429", 0) >= 1

    def test_server_keeps_serving_after_shedding(self, layout, server):
        """Concurrent overload, then normal service: 429s during the
        storm never wedge the dispatcher."""
        _path, vectors = layout
        statuses = []
        lock = threading.Lock()

        def fire(rows):
            body = json.dumps({"vectors": rows.tolist(), "k": 3}).encode()
            status, _h, _d = http_request_full(server.port, "POST",
                                               "/query", body)
            with lock:
                statuses.append(status)

        threads = [threading.Thread(target=fire, args=(vectors[i:i + 3],))
                   for i in range(0, 24, 3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert set(statuses) <= {200, 429}
        status, payload = post_query(
            server.port, {"vector": vectors[0].tolist(), "k": 3})
        assert status == 200 and payload["hits"]


def test_http_request_exposes_headers(layout):
    """serveutil.http_request returns only (status, body); the header
    variant lives here so the Retry-After assertions read naturally."""
    # Covered implicitly above; this test pins the helper contract.
    path, vectors = layout
    with ServerThread(open_index(path, mmap=True)) as handle:
        status, headers, _data = http_request_full(handle.port, "GET",
                                                    "/healthz")
        assert status == 200
        assert "Content-Type" in headers or "content-type" in headers
