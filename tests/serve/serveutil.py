"""Shared helpers for the serving test layer.

Corpora here are raw seeded gaussian vectors with *duplicate rows*
(every vector appears ``DUP_EVERY`` times under distinct keys), so
score ties are dense — exactly the regime where a buggy micro-batch
demux or a non-deterministic merge would scramble rankings.  Queries
are corpus rows plus fresh gaussians, so both the tie-heavy and the
generic path get exercised.
"""

from __future__ import annotations

import http.client
import json

import numpy as np

from repro.index import IndexSpec, ShardedIndex, VectorIndex

#: Each distinct vector appears this many times (distinct keys).
DUP_EVERY = 3


def make_corpus(n: int = 240, dim: int = 24, seed: int = 0):
    """``(keys, vectors)`` with every vector duplicated ``DUP_EVERY``
    times under different keys."""
    rng = np.random.default_rng(seed)
    base = rng.standard_normal(((n + DUP_EVERY - 1) // DUP_EVERY, dim))
    vectors = np.repeat(base, DUP_EVERY, axis=0)[:n]
    keys = [f"t{i:05d}" for i in range(n)]
    return keys, vectors


def save_layout(tmp_path, keys, vectors, n_shards: int, seed: int = 0):
    """Persist the corpus as a single file (``n_shards == 1``) or a
    sharded directory; returns the saved path for ``open_index``."""
    dim = vectors.shape[1]
    if n_shards == 1:
        index = VectorIndex(dim=dim, seed=seed)
        index.add_batch(keys, vectors)
        return index.save(tmp_path / "index.npz")
    sharded = ShardedIndex.create(
        IndexSpec(kind="vector", dim=dim, seed=seed), n_shards)
    sharded.add_batch(keys, vectors)
    return sharded.save(tmp_path / f"sharded-{n_shards}")


def http_request(port: int, method: str, path: str, body: bytes | None = None,
                 timeout: float = 30.0):
    """One request against a local server; returns ``(status, bytes)``."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        headers = {"Content-Type": "application/json"} if body else {}
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


def http_request_full(port: int, method: str, path: str,
                      body: bytes | None = None, timeout: float = 30.0):
    """Like :func:`http_request` but returns ``(status, headers,
    bytes)`` — for tests that assert on response headers (e.g. the
    backpressure layer's ``Retry-After``)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        headers = {"Content-Type": "application/json"} if body else {}
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        conn.close()


def post_query(port: int, payload: dict, timeout: float = 30.0):
    """POST /query with a JSON payload; returns ``(status, parsed)``."""
    status, data = http_request(port, "POST", "/query",
                                json.dumps(payload).encode(), timeout=timeout)
    return status, json.loads(data)


def served_ranking(hits: list[dict]) -> list[tuple[str, float]]:
    """Wire hits to comparable ``(key, score)`` pairs.  JSON round-trips
    floats exactly (repr-based), so equality against offline scores is
    exact, not approximate."""
    return [(hit["key"], hit["score"]) for hit in hits]


def offline_ranking(hits) -> list[tuple[str, float]]:
    return [(hit.key, hit.score) for hit in hits]
