"""Cache soak: 8 clients hammering a small keyspace through the
result cache — zero bleed, counters that add up.

The cache adds three new ways a response could go wrong under
concurrency: an exact entry served to the wrong request (fingerprint
collision/race), a semantic shortlist rescored for the wrong query, or
a cross-index mix-up (two indexes' caches sharing state).  The soak
drives a two-index catalog with a deliberately tiny query pool — the
hit path dominates, exactly where those bugs live — and checks every
response against the offline expectation for *its* (index, query, k,
exclude), with a ``no_cache`` minority riding along to exercise the
bypass partition in mixed ticks.

Afterwards the books must balance, per index: ``exact_hits +
semantic_hits + misses + bypassed == queries_total``.
"""

import json
import random
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest
from serveutil import (
    http_request,
    make_corpus,
    offline_ranking,
    post_query,
    save_layout,
    served_ranking,
)

from repro.catalog import Catalog, CatalogEntry
from repro.index import open_index
from repro.serve import ServerThread

DIM = 16
N_QUERIES = 6
KS = (3, 7)
N_CLIENTS = 8
REQUESTS_PER_CLIENT = 30
INDEX_NAMES = ("alpha", "beta")


@pytest.fixture(scope="module")
def cache_soak(tmp_path_factory):
    """Two-index catalog server (cache on) + per-index offline truth
    over the small query pool."""
    tmp = tmp_path_factory.mktemp("cache-soak")
    queries = {}
    expected = {}
    catalog = Catalog(root=tmp)
    for position, name in enumerate(INDEX_NAMES):
        keys, vectors = make_corpus(n=150, dim=DIM, seed=40 + position)
        n_shards = 2 if position else 1
        path = save_layout(tmp, keys, vectors, n_shards, seed=40 + position)
        # save_layout names fixed files; separate per index via rename.
        target = tmp / f"{name}{'.npz' if n_shards == 1 else ''}"
        path.rename(target)
        catalog.add(CatalogEntry(name=name, path=target.name, kind="vector",
                                 default=(position == 0)))
        index = open_index(target)
        pool = np.array(vectors[:: len(vectors) // N_QUERIES][:N_QUERIES])
        queries[name] = pool
        top_keys = [hits[0].key
                    for hits in index.query_many(pool, k=1)]
        for k in KS:
            for q in range(N_QUERIES):
                for exclude in (None, top_keys[q]):
                    excludes = [exclude]
                    hits = index.query_many(pool[q:q + 1], k=k,
                                            excludes=excludes)[0]
                    expected[(name, q, k, exclude)] = offline_ranking(hits)
        queries[name + ":top"] = top_keys
    catalog.save()
    with ServerThread(catalog, max_wait_ms=2.0, max_batch=16,
                      cache_size=64) as handle:
        yield handle, queries, expected


class TestCacheSoak:
    def test_eight_clients_small_keyspace_no_bleed(self, cache_soak):
        handle, queries, expected = cache_soak

        def client(worker: int) -> int:
            rng = random.Random(1000 + worker)
            checked = 0
            for _ in range(REQUESTS_PER_CLIENT):
                name = rng.choice(INDEX_NAMES)
                q = rng.randrange(N_QUERIES)
                k = rng.choice(KS)
                exclude = (queries[name + ":top"][q]
                           if rng.random() < 0.3 else None)
                payload = {"index": name,
                           "vector": queries[name][q].tolist(), "k": k}
                if exclude is not None:
                    payload["exclude"] = exclude
                if rng.random() < 0.15:
                    payload["no_cache"] = True
                status, reply = post_query(handle.port, payload)
                assert status == 200
                assert served_ranking(reply["hits"]) \
                    == expected[(name, q, k, exclude)], \
                    f"bleed: {name} q{q} k{k} exclude={exclude!r}"
                checked += 1
            return checked

        with ThreadPoolExecutor(max_workers=N_CLIENTS) as pool:
            totals = list(pool.map(client, range(N_CLIENTS)))
        assert sum(totals) == N_CLIENTS * REQUESTS_PER_CLIENT

        status, body = http_request(handle.port, "GET", "/stats")
        assert status == 200
        per_index = json.loads(body)["indexes"]
        grand_served = 0
        grand_hits = 0
        for name in INDEX_NAMES:
            section = per_index[name]
            cache = section["cache"]
            assert (cache["exact_hits"] + cache["semantic_hits"]
                    + cache["misses"] + cache["bypassed"]) \
                == section["queries"], \
                f"{name}: cache counters must partition the queries"
            grand_served += section["queries"]
            grand_hits += cache["exact_hits"] + cache["semantic_hits"]
        assert grand_served == N_CLIENTS * REQUESTS_PER_CLIENT
        # Tiny keyspace, many repeats: the cache must actually be doing
        # the serving, not just passing traffic through.
        assert grand_hits > grand_served // 2
