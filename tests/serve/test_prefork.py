"""The pre-fork serving tier: unit layer (backoff, sockets, stats
files) plus in-process supervisor behaviour and full CLI end-to-end
fleets.

The e2e house rule carries over unchanged from the single-process
suite: a ranking served by *any* worker must be bit-identical to the
offline ``query_many`` path — pre-forking multiplies processes, never
answers.
"""

from __future__ import annotations

import json
import signal
import socket
import threading
import time

import pytest

from repro.index import open_index
from repro.serve.prefork import (
    PreforkSupervisor,
    RestartBackoff,
    aggregate_worker_stats,
    bind_socket,
    read_worker_stats,
    write_worker_stats,
)

from preforkutil import PreforkFleet, post_query_retry
from serveutil import (
    make_corpus,
    offline_ranking,
    post_query,
    save_layout,
    served_ranking,
)


class TestRestartBackoff:
    def test_crash_loop_doubles_to_cap(self):
        backoff = RestartBackoff(initial=0.1, cap=1.0, stable_after=5.0)
        delays = [backoff.next_delay(uptime=0.01) for _ in range(6)]
        assert delays == [0.1, 0.2, 0.4, 0.8, 1.0, 1.0]

    def test_stable_uptime_resets(self):
        backoff = RestartBackoff(initial=0.1, cap=1.0, stable_after=5.0)
        assert backoff.next_delay(0.01) == 0.1
        assert backoff.next_delay(0.01) == 0.2
        # A crash after a long healthy run is a fresh incident.
        assert backoff.next_delay(uptime=60.0) == 0.1
        assert backoff.next_delay(0.01) == 0.2

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            RestartBackoff(initial=0.0)
        with pytest.raises(ValueError):
            RestartBackoff(initial=2.0, cap=1.0)


class TestBindSocket:
    def test_binds_without_listening(self):
        sock = bind_socket("127.0.0.1", 0)
        try:
            port = sock.getsockname()[1]
            assert port > 0
            # Not listening: a connect attempt is refused, proving the
            # supervisor's socket can never swallow client connections.
            with pytest.raises(OSError):
                probe = socket.create_connection(("127.0.0.1", port),
                                                 timeout=2)
                probe.close()
        finally:
            sock.close()

    @pytest.mark.skipif(not hasattr(socket, "SO_REUSEPORT"),
                        reason="platform lacks SO_REUSEPORT")
    def test_reuseport_allows_sibling_binds(self):
        first = bind_socket("127.0.0.1", 0, reuse_port=True)
        try:
            port = first.getsockname()[1]
            second = bind_socket("127.0.0.1", port, reuse_port=True)
            second.close()
        finally:
            first.close()


class TestWorkerStatsFiles:
    def record(self, worker_id, queries, latencies):
        return {"worker_id": worker_id, "pid": 1000 + worker_id,
                "updated_at": 1.0,
                "stats": {"requests_total": queries,
                          "queries_total": queries,
                          "qps": float(queries),
                          "responses_by_status": {"200": queries},
                          "dispatcher": {"rejected": 0},
                          "batch": {"dispatched": 1}},
                "latencies": latencies}

    def test_write_read_round_trip(self, tmp_path):
        write_worker_stats(tmp_path, 0, self.record(0, 5, [0.01]))
        write_worker_stats(tmp_path, 1, self.record(1, 7, [0.02]))
        records = read_worker_stats(tmp_path)
        assert sorted(records) == [0, 1]
        assert records[1]["stats"]["queries_total"] == 7

    def test_rewrite_replaces_atomically(self, tmp_path):
        write_worker_stats(tmp_path, 0, self.record(0, 1, []))
        write_worker_stats(tmp_path, 0, self.record(0, 9, []))
        records = read_worker_stats(tmp_path)
        assert records[0]["stats"]["queries_total"] == 9
        # No stray tmp files left behind.
        assert [p.name for p in tmp_path.iterdir()] == ["worker-000.json"]

    def test_torn_or_foreign_files_are_skipped(self, tmp_path):
        write_worker_stats(tmp_path, 0, self.record(0, 3, []))
        (tmp_path / "worker-001.json").write_text("{not json")
        (tmp_path / "worker-002.json").write_text('["no", "dict"]')
        assert sorted(read_worker_stats(tmp_path)) == [0]

    def test_aggregate_sums_and_concatenates(self, tmp_path):
        records = {
            0: self.record(0, 10, [0.001] * 9),
            1: self.record(1, 30, [0.100]),
        }
        rollup = aggregate_worker_stats(records)
        assert rollup["workers"] == 2
        assert rollup["queries_total"] == 40
        assert rollup["qps"] == pytest.approx(40.0)
        assert rollup["responses_by_status"] == {"200": 40}
        # Percentiles over the CONCATENATED reservoirs: p50 of nine
        # 1 ms values plus one 100 ms value is 1 ms, max is 100 ms —
        # averaging per-worker percentiles would have said ~50 ms.
        assert rollup["latency_ms"]["p50"] == pytest.approx(1.0)
        assert rollup["latency_ms"]["max"] == pytest.approx(100.0)

    def test_aggregate_of_nothing(self):
        rollup = aggregate_worker_stats({})
        assert rollup["workers"] == 0
        assert rollup["queries_total"] == 0
        assert rollup["latency_ms"]["p50"] is None


class TestSupervisorInProcess:
    """Supervisor mechanics with throwaway forked workers — no HTTP,
    no index; the children just mark files / exit with codes."""

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError, match="n_workers"):
            PreforkSupervisor(lambda *_: 0, 0)

    def test_fatal_exit_code_shuts_fleet_down(self, tmp_path):
        def worker_main(worker_id, sock):
            return 2  # config error: restarting can never help

        supervisor = PreforkSupervisor(worker_main, 2, log=lambda _m: None)
        assert supervisor.run(install_signals=False) == 2
        assert supervisor.worker_pids == {}

    def test_crashed_worker_restarts_with_backoff(self, tmp_path):
        boots = tmp_path / "boots"

        def worker_main(worker_id, sock):
            with open(boots, "a") as handle:
                handle.write(f"{worker_id}\n")
            return 0  # instant exit: not fatal, so the slot restarts

        supervisor = PreforkSupervisor(
            worker_main, 1, backoff_initial=0.02, backoff_cap=0.1,
            log=lambda _m: None)
        thread = threading.Thread(
            target=lambda: supervisor.run(install_signals=False))
        thread.start()
        try:
            deadline = time.monotonic() + 20
            while time.monotonic() < deadline:
                if (boots.exists()
                        and len(boots.read_text().splitlines()) >= 3):
                    break
                time.sleep(0.02)
        finally:
            supervisor.request_stop()
            thread.join(timeout=30)
        assert not thread.is_alive()
        assert len(boots.read_text().splitlines()) >= 3
        assert supervisor.restarts_total >= 2

    def test_drain_reaps_long_running_workers(self):
        def worker_main(worker_id, sock):
            # SIGTERM was reset to SIG_DFL in the child, so the drain
            # fan-out terminates this sleep.
            time.sleep(60)
            return 0

        supervisor = PreforkSupervisor(worker_main, 2,
                                       log=lambda _m: None)
        thread = threading.Thread(
            target=lambda: supervisor.run(install_signals=False))
        thread.start()
        deadline = time.monotonic() + 10
        while (len(supervisor.worker_pids) < 2
               and time.monotonic() < deadline):
            time.sleep(0.02)
        assert len(supervisor.worker_pids) == 2
        supervisor.request_stop()
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert supervisor.worker_pids == {}

    def test_port_resolves_before_fork(self):
        supervisor = PreforkSupervisor(lambda *_: 0, 1,
                                       log=lambda _m: None)
        supervisor.start()
        try:
            assert supervisor.port > 0
        finally:
            supervisor._cleanup()


@pytest.fixture(scope="module")
def layout(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("prefork-corpus")
    keys, vectors = make_corpus(n=120, dim=16, seed=3)
    path = save_layout(tmp, keys, vectors, 2, seed=3)
    queries = vectors[:6]
    offline = open_index(path)
    expected = [offline_ranking(hits)
                for hits in offline.query_many(queries, k=5)]
    return path, queries, expected


class TestPreforkE2E:
    def test_any_worker_ranking_matches_offline(self, layout):
        """The equivalence gate: hammer a 2-worker fleet over fresh
        connections (so accepts spread across workers) and require
        every served ranking bit-identical to the offline path —
        while proving more than one worker actually answered."""
        path, queries, expected = layout
        with PreforkFleet(path, 2,
                          extra_args=["--max-wait-ms", "1"]) as fleet:
            seen = fleet.sample_workers()
            assert len(seen) == 2, f"only saw workers {seen}"
            for i in range(40):
                j = i % len(queries)
                status, payload = post_query(
                    fleet.port, {"vector": queries[j].tolist(), "k": 5})
                assert status == 200
                assert served_ranking(payload["hits"]) == expected[j]
            code, stdout, stderr = fleet.stop()
        assert code == 0, stderr
        assert "All 2 workers drained" in stdout

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_sigterm_drains_parked_requests(self, layout, workers):
        """SIGTERM lands while requests are parked in micro-batch
        windows: every one must still get its (correct) answer, at
        every worker count — 1 is the plain single-process path, >1
        the supervisor fan-out."""
        path, queries, expected = layout
        results: list[tuple[int, int, list]] = []
        lock = threading.Lock()
        with PreforkFleet(path, workers,
                          extra_args=["--max-wait-ms", "400",
                                      "--max-batch", "64"]) as fleet:
            def client(j: int) -> None:
                status, payload = post_query(
                    fleet.port, {"vector": queries[j].tolist(), "k": 5},
                    timeout=60)
                with lock:
                    results.append(
                        (j, status,
                         served_ranking(payload.get("hits", []))))

            threads = [threading.Thread(target=client, args=(j,))
                       for j in range(len(queries))]
            for thread in threads:
                thread.start()
            # Give every request time to arrive and park in a batch
            # window (400 ms wait), then pull the rug.
            time.sleep(0.15)
            code, stdout, _stderr = fleet.stop(sig=signal.SIGTERM)
            for thread in threads:
                thread.join(timeout=60)
        assert code == 0
        assert len(results) == len(queries)
        for j, status, ranking in results:
            assert status == 200, f"query {j} got {status} during drain"
            assert ranking == expected[j]

    def test_fleet_stats_sections_and_aggregate(self, layout):
        path, queries, expected = layout
        with PreforkFleet(path, 3,
                          extra_args=["--max-wait-ms", "1"]) as fleet:
            n_posted = 12
            for i in range(n_posted):
                status, payload = post_query(
                    fleet.port,
                    {"vector": queries[i % len(queries)].tolist(),
                     "k": 5})
                assert status == 200
            # Let every worker's flush loop publish its counters.
            time.sleep(0.6)
            stats = fleet.stats()
            assert stats["worker_id"] in (0, 1, 2)
            assert sorted(stats["workers"]) == ["0", "1", "2"]
            for section in stats["workers"].values():
                assert "pid" in section and "updated_at" in section
                assert "latency_ms" in section
            aggregate = stats["aggregate"]
            assert aggregate["workers"] == 3
            assert aggregate["queries_total"] == n_posted
            code, _stdout, stderr = fleet.stop()
        assert code == 0, stderr

    def test_killed_worker_restarts_and_serves_correctly(self, layout):
        """SIGKILL one worker of two: the supervisor restarts it (the
        supervisor itself never restarts — same top-level pid, exit 0
        at the end), and not a single query answered before, during,
        or after the fault is wrong."""
        path, queries, expected = layout
        with PreforkFleet(path, 2,
                          extra_args=["--max-wait-ms", "1"]) as fleet:
            before = fleet.sample_workers()
            assert len(before) == 2
            import os
            victim = before[0]
            os.kill(victim, signal.SIGKILL)
            replacement = fleet.wait_for_pid_change(set(before.values()))
            assert replacement not in before.values()
            for i in range(20):
                j = i % len(queries)
                payload, _retries = post_query_retry(
                    fleet.port, {"vector": queries[j].tolist(), "k": 5})
                assert served_ranking(payload["hits"]) == expected[j]
            code, stdout, stderr = fleet.stop()
        assert code == 0, stderr
        assert "restarting" in stdout
        assert "1 restart(s)" in stdout

    def test_workers_with_cluster_is_rejected(self, tmp_path, capsys):
        from repro.cli import main

        topology = tmp_path / "topology.json"
        topology.write_text(json.dumps({"shards": []}))
        assert main(["serve", "--cluster", str(topology),
                     "--workers", "2"]) == 2
        assert "--workers" in capsys.readouterr().err

    def test_fatal_worker_config_error_exits_two(self, tmp_path, layout):
        """A worker that cannot start must take the fleet down with
        exit code 2, not crash-loop.  The parent only validates the
        manifest (cheap, fork-safe), so a layout whose shard data is
        gone passes the parent and fails in the child — exactly the
        supervisor's fatal-exit path."""
        import shutil

        path, _queries, _expected = layout
        doomed = tmp_path / "doomed"
        shutil.copytree(path, doomed)
        # Keep shard 0 (the parent's spec peek reads it); delete the
        # rest so the child's full open is what fails.
        (doomed / "shard-0001.npz").unlink()
        with PreforkFleet(doomed, 2,
                          extra_args=["--max-wait-ms", "1"]) as fleet:
            code, _stdout, stderr = fleet.stop(timeout=30)
        assert code == 2
        assert "worker" in stderr
