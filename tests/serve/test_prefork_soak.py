"""Restart-under-soak for the pre-fork tier, mirroring
``tests/cluster/test_fault_injection.py``: a worker dies by SIGKILL in
the middle of sustained concurrent load and the fleet must (a) never
serve a wrong ranking and (b) never drop a request — clients whose TCP
connection died with the worker see a reset, retry, and land on a live
worker; every request eventually gets the bit-identical offline
answer.

The corpus is the tie-dense ``serveutil`` one (every vector appears
``DUP_EVERY`` times), so a restart that scrambled dispatcher demux or
cache state anywhere would surface as a ranking diff, not a flake.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import pytest

from repro.index import open_index

from preforkutil import PreforkFleet, post_query_retry
from serveutil import make_corpus, offline_ranking, save_layout, served_ranking

N_CLIENTS = 8
REQUESTS_PER_CLIENT = 25


@pytest.fixture(scope="module")
def soak_layout(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("prefork-soak")
    keys, vectors = make_corpus(n=240, dim=24, seed=11)
    path = save_layout(tmp, keys, vectors, 2, seed=11)
    queries = vectors[:12]
    offline = open_index(path)
    expected = [offline_ranking(hits)
                for hits in offline.query_many(queries, k=5)]
    return path, queries, expected


def test_worker_killed_mid_soak_drops_nothing(soak_layout):
    path, queries, expected = soak_layout
    wrong: list[tuple[int, int]] = []
    completed: list[int] = []
    retries_total = [0]
    lock = threading.Lock()
    stop_clients = threading.Event()

    with PreforkFleet(path, 3,
                      extra_args=["--max-wait-ms", "1"]) as fleet:
        def client(client_id: int) -> None:
            for i in range(REQUESTS_PER_CLIENT):
                j = (client_id + i) % len(queries)
                payload, retries = post_query_retry(
                    fleet.port, {"vector": queries[j].tolist(), "k": 5})
                with lock:
                    retries_total[0] += retries
                    if served_ranking(payload["hits"]) != expected[j]:
                        wrong.append((client_id, i))
                    completed.append(client_id)
            # Hold the last client until the kill has happened, so the
            # fault always lands under live load.
            stop_clients.wait(timeout=60)

        threads = [threading.Thread(target=client, args=(c,))
                   for c in range(N_CLIENTS)]
        for thread in threads:
            thread.start()

        # Mid-soak fault: SIGKILL one worker while clients hammer.
        before = fleet.sample_workers()
        assert len(before) == 3
        time.sleep(0.2)
        victim = sorted(before.values())[0]
        os.kill(victim, signal.SIGKILL)

        replacement = fleet.wait_for_pid_change(set(before.values()))
        assert replacement not in before.values()
        stop_clients.set()
        for thread in threads:
            thread.join(timeout=120)
        assert not any(thread.is_alive() for thread in threads)

        # Post-fault: the restarted fleet still serves exact rankings.
        for j in range(len(queries)):
            payload, _retries = post_query_retry(
                fleet.port, {"vector": queries[j].tolist(), "k": 5})
            assert served_ranking(payload["hits"]) == expected[j]

        code, stdout, stderr = fleet.stop()

    assert wrong == [], f"wrong rankings under fault: {wrong}"
    assert len(completed) == N_CLIENTS * REQUESTS_PER_CLIENT, \
        "a client dropped requests"
    assert code == 0, stderr
    # The supervisor restarted the worker itself; the top-level
    # process never restarted (one clean exit 0 from the same pid).
    assert "restarting" in stdout
    assert "worker" in stdout
