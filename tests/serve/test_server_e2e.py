"""End-to-end server tests: real sockets, served ≡ offline rankings.

Each test boots a :class:`~repro.serve.ServerThread` on an ephemeral
port and talks to it over plain ``http.client``.  The load-bearing
property is pinned throughout: whatever the server returns for a query
is exactly what ``open_index(...).query_many`` returns offline — same
keys, bit-equal scores, same tie order — across layouts (1/2/5 shards),
mmap and eager opens, and single and batch request shapes.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest
from serveutil import (
    http_request,
    make_corpus,
    offline_ranking,
    post_query,
    save_layout,
    served_ranking,
)

from repro.index import FORMAT_VERSION, open_index
from repro.serve import ServerThread

DIM = 24


@pytest.fixture(scope="module")
def corpus():
    return make_corpus(n=240, dim=DIM, seed=7)


@pytest.fixture(scope="module")
def queries(corpus):
    _keys, vectors = corpus
    rng = np.random.default_rng(11)
    fresh = rng.standard_normal((6, DIM))
    # Corpus rows as queries hit the duplicate-tie path; fresh
    # gaussians hit the generic path.
    return np.vstack([vectors[:6], fresh])


class TestServedEqualsOffline:
    @pytest.mark.parametrize("n_shards", [1, 2, 5])
    @pytest.mark.parametrize("mmap", [False, True])
    def test_batch_request_matches_query_many(self, tmp_path, corpus,
                                              queries, n_shards, mmap):
        keys, vectors = corpus
        path = save_layout(tmp_path, keys, vectors, n_shards)
        offline = open_index(path)
        want = [offline_ranking(hits)
                for hits in offline.query_many(queries, k=5)]
        with ServerThread(open_index(path, mmap=mmap),
                          max_wait_ms=1.0) as handle:
            status, payload = post_query(
                handle.port, {"vectors": queries.tolist(), "k": 5})
        assert status == 200
        got = [served_ranking(result["hits"])
               for result in payload["results"]]
        assert got == want

    @pytest.mark.parametrize("n_shards", [1, 2, 5])
    def test_single_requests_match_query_many(self, tmp_path, corpus,
                                              queries, n_shards):
        keys, vectors = corpus
        path = save_layout(tmp_path, keys, vectors, n_shards)
        offline = open_index(path)
        want = [offline_ranking(hits)
                for hits in offline.query_many(queries, k=4)]
        with ServerThread(open_index(path, mmap=True),
                          max_wait_ms=1.0) as handle:
            for row, expected in zip(queries, want):
                status, payload = post_query(
                    handle.port, {"vector": row.tolist(), "k": 4})
                assert status == 200
                assert served_ranking(payload["hits"]) == expected

    def test_exclude_is_honoured(self, tmp_path, corpus):
        keys, vectors = corpus
        path = save_layout(tmp_path, keys, vectors, 2)
        offline = open_index(path)
        want = offline_ranking(
            offline.query_many(vectors[:1], k=5, excludes=[keys[0]])[0])
        with ServerThread(open_index(path, mmap=True),
                          max_wait_ms=1.0) as handle:
            status, payload = post_query(
                handle.port, {"vector": vectors[0].tolist(), "k": 5,
                              "exclude": keys[0]})
        assert status == 200
        got = served_ranking(payload["hits"])
        assert got == want
        assert keys[0] not in [key for key, _score in got]

    def test_mixed_k_requests_stay_isolated(self, tmp_path, corpus, queries):
        """Different k values in flight together must each match their
        own serial result (the dispatcher groups ticks by k)."""
        keys, vectors = corpus
        path = save_layout(tmp_path, keys, vectors, 2)
        offline = open_index(path)
        ks = [1, 3, 7, 300]   # 300 > corpus candidates: brute-force path
        want = {k: [offline_ranking(hits)
                    for hits in offline.query_many(queries, k=k)]
                for k in ks}
        results: dict[tuple[int, int], list] = {}
        errors: list[Exception] = []

        def client(k, q):
            try:
                status, payload = post_query(
                    handle.port, {"vector": queries[q].tolist(), "k": k})
                assert status == 200
                results[(k, q)] = served_ranking(payload["hits"])
            except Exception as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        with ServerThread(open_index(path, mmap=True), max_wait_ms=20.0,
                          max_batch=64) as handle:
            threads = [threading.Thread(target=client, args=(k, q))
                       for k in ks for q in range(len(queries))]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
        assert not errors
        for (k, q), got in results.items():
            assert got == want[k][q], f"k={k} query {q} diverged"
        assert len(results) == len(ks) * len(queries)


class TestErrorContract:
    @pytest.fixture(scope="class")
    def server(self, tmp_path_factory):
        keys, vectors = make_corpus(n=60, dim=DIM, seed=3)
        tmp = tmp_path_factory.mktemp("err")
        path = save_layout(tmp, keys, vectors, 2)
        with ServerThread(open_index(path, mmap=True), max_wait_ms=1.0,
                          max_body=4096) as handle:
            yield handle

    def test_malformed_json_is_400(self, server):
        status, data = http_request(server.port, "POST", "/query", b"{nope")
        assert status == 400
        assert "JSON" in json.loads(data)["error"]

    def test_wrong_dim_is_400(self, server):
        status, payload = post_query(server.port, {"vector": [1.0, 2.0]})
        assert status == 400
        assert "dims" in payload["error"]

    def test_unknown_route_is_404(self, server):
        status, _data = http_request(server.port, "GET", "/nope")
        assert status == 404

    def test_wrong_method_is_405(self, server):
        assert http_request(server.port, "GET", "/query")[0] == 405
        assert http_request(server.port, "POST", "/healthz",
                            b"{}")[0] == 405
        assert http_request(server.port, "POST", "/stats", b"{}")[0] == 405

    def test_oversized_body_is_413(self, server):
        blob = json.dumps({"vectors": [[0.0] * DIM] * 500}).encode()
        assert len(blob) > 4096
        status, data = http_request(server.port, "POST", "/query", blob)
        assert status == 413
        assert "exceeds" in json.loads(data)["error"]

    def test_server_survives_error_barrage(self, server, corpus=None):
        """After every error above, a good request still answers —
        errors never wedge the connection loop."""
        keys, vectors = make_corpus(n=60, dim=DIM, seed=3)
        status, payload = post_query(server.port,
                                     {"vector": vectors[0].tolist(), "k": 2})
        assert status == 200 and len(payload["hits"]) == 2


class TestHealthAndStats:
    def test_healthz_reports_index_identity(self, tmp_path):
        keys, vectors = make_corpus(n=90, dim=DIM, seed=5)
        path = save_layout(tmp_path, keys, vectors, 5)
        with ServerThread(open_index(path, mmap=True)) as handle:
            status, data = http_request(handle.port, "GET", "/healthz")
        payload = json.loads(data)
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["kind"] == "vector"
        assert payload["dim"] == DIM
        assert payload["entries"] == 90
        assert payload["shards"] == 5
        # Deployment identity: which checkpoint produced the vectors
        # and which saved-format version the layout carries.
        assert payload["model_id"] is None
        assert payload["format_version"] == FORMAT_VERSION
        assert payload["indexes"] == 1

    def test_healthz_reports_model_id(self, tmp_path):
        keys, vectors = make_corpus(n=30, dim=DIM, seed=6)
        index = open_index(save_layout(tmp_path, keys, vectors, 1))
        index.model_id = "ckpt-abc123"
        with ServerThread(index) as handle:
            _status, data = http_request(handle.port, "GET", "/healthz")
        assert json.loads(data)["model_id"] == "ckpt-abc123"

    def test_stats_counts_requests_and_queries(self, tmp_path, corpus,
                                               queries):
        keys, vectors = corpus
        path = save_layout(tmp_path, keys, vectors, 1)
        with ServerThread(open_index(path, mmap=True),
                          max_wait_ms=1.0) as handle:
            post_query(handle.port, {"vectors": queries.tolist(), "k": 3})
            post_query(handle.port, {"vector": queries[0].tolist()})
            http_request(handle.port, "POST", "/query", b"{bad")
            status, data = http_request(handle.port, "GET", "/stats")
        snapshot = json.loads(data)
        assert status == 200
        assert snapshot["queries_total"] == len(queries) + 1
        assert snapshot["requests_total"] >= 3
        assert snapshot["responses_by_status"]["200"] >= 2
        assert snapshot["responses_by_status"]["400"] == 1
        assert snapshot["batch"]["dispatched"] >= 1
        assert snapshot["batch"]["max_size"] <= 32
        assert snapshot["dispatcher"]["max_batch"] == 32


class TestGracefulDrain:
    def test_inflight_request_completes_on_shutdown(self, tmp_path, corpus):
        """A request parked in a wide micro-batch window must be
        answered — correctly — when the server shuts down mid-wait."""
        keys, vectors = corpus
        path = save_layout(tmp_path, keys, vectors, 2)
        offline = open_index(path)
        want = offline_ranking(offline.query_many(vectors[:1], k=3)[0])
        handle = ServerThread(open_index(path, mmap=True),
                              max_wait_ms=30_000.0, max_batch=1024).start()
        outcome: dict = {}

        def client():
            outcome["response"] = post_query(
                handle.port, {"vector": vectors[0].tolist(), "k": 3})

        thread = threading.Thread(target=client)
        thread.start()
        try:
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                _status, data = http_request(handle.port, "GET", "/stats")
                if json.loads(data)["dispatcher"]["pending"] >= 1:
                    break
                time.sleep(0.01)
            else:
                pytest.fail("query never reached the dispatcher")
        finally:
            started = time.monotonic()
            handle.stop()
        drained_in = time.monotonic() - started
        thread.join(timeout=10)
        status, payload = outcome["response"]
        assert status == 200
        assert served_ranking(payload["hits"]) == want
        # The drain flushed the batch rather than sitting out the
        # 30-second window.
        assert drained_in < 10

    def test_mid_body_request_completes_on_shutdown(self, tmp_path, corpus):
        """A client that has sent its request line but is still
        streaming the body when the drain starts must not have its
        upload severed: the drain waits, the request is answered 200
        with the correct ranking."""
        import socket

        keys, vectors = corpus
        path = save_layout(tmp_path, keys, vectors, 2)
        offline = open_index(path)
        want = offline_ranking(offline.query_many(vectors[:1], k=3)[0])
        handle = ServerThread(open_index(path, mmap=True),
                              max_wait_ms=1.0).start()
        body = json.dumps({"vector": vectors[0].tolist(), "k": 3}).encode()
        head = (f"POST /query HTTP/1.1\r\nHost: x\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n").encode()
        sock = socket.create_connection(("127.0.0.1", handle.port),
                                        timeout=30)
        stopper = None
        try:
            sock.sendall(head + body[:10])
            time.sleep(0.3)   # server has the request line, not the body
            stopper = threading.Thread(target=handle.stop)
            stopper.start()
            time.sleep(0.3)   # drain is now waiting on this connection
            sock.sendall(body[10:])
            response = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                response += chunk
        finally:
            sock.close()
            if stopper is not None:
                stopper.join(timeout=30)
            handle.stop()
        status_line, _, rest = response.partition(b"\r\n")
        assert b" 200 " in status_line, response[:200]
        payload = json.loads(rest.partition(b"\r\n\r\n")[2])
        assert served_ranking(payload["hits"]) == want

    def test_stop_is_idempotent(self, tmp_path, corpus):
        keys, vectors = corpus
        path = save_layout(tmp_path, keys, vectors, 1)
        handle = ServerThread(open_index(path)).start()
        handle.stop()
        handle.stop()


class TestServeCli:
    def test_cli_boots_serves_and_drains_on_sigterm(self, tmp_path, corpus,
                                                    queries):
        """The `repro.cli serve` entry end-to-end: boots from a saved
        path, prints the bound port, answers /healthz and /query, logs
        to --log-file, and exits 0 on SIGTERM after draining."""
        keys, vectors = corpus
        path = save_layout(tmp_path, keys, vectors, 2)
        offline = open_index(path)
        want = [offline_ranking(hits)
                for hits in offline.query_many(queries[:2], k=3)]
        log_file = tmp_path / "server.log"
        env = dict(os.environ)
        env["PYTHONPATH"] = (str(Path(__file__).resolve().parents[2] / "src")
                             + os.pathsep + env.get("PYTHONPATH", ""))
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", str(path),
             "--port", "0", "--max-wait-ms", "1",
             "--log-file", str(log_file)],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True)
        try:
            banner = process.stdout.readline()
            assert "Serving vector index" in banner, banner
            port = int(banner.split("http://127.0.0.1:")[1].split()[0])
            status, data = http_request(port, "GET", "/healthz")
            assert status == 200 and json.loads(data)["status"] == "ok"
            status, payload = post_query(
                port, {"vectors": queries[:2].tolist(), "k": 3})
            assert status == 200
            assert [served_ranking(result["hits"])
                    for result in payload["results"]] == want
        finally:
            process.send_signal(signal.SIGTERM)
            stdout, stderr = process.communicate(timeout=30)
        assert process.returncode == 0, stderr
        assert "Draining" in stdout
        assert log_file.exists()
        log_text = log_file.read_text()
        assert "serving kind=vector" in log_text
        assert "POST /query -> 200" in log_text
        assert "stopped after" in log_text

    def test_cli_rejects_bad_flags(self, capsys, tmp_path):
        from repro.cli import main

        keys, vectors = make_corpus(n=30, dim=8, seed=1)
        path = save_layout(tmp_path, keys, vectors, 1)
        assert main(["serve", str(path), "--max-batch", "0"]) == 2
        assert main(["serve", str(path), "--max-wait-ms", "-1"]) == 2
        assert main(["serve", str(path), "--jobs", "0"]) == 2
        assert main(["serve", str(path), "--max-open", "0"]) == 2
        assert main(["serve", str(tmp_path / "missing.npz")]) == 2
        err = capsys.readouterr().err
        assert "--max-batch" in err and "--max-open" in err
        assert "no index file" in err
