"""Subprocess harness for the pre-fork serving tests.

:class:`PreforkFleet` boots ``python -m repro.cli serve --workers N``
exactly as an operator would, parses the supervisor banner for the
bound port, and exposes the fleet to test clients.  ``/healthz``
answers carry the responding worker's ``worker_id``/``pid``, which is
how tests observe accept distribution and pick restart victims.

Clients talking to a fleet mid-fault use :meth:`post_query_retry`:
killing a worker resets the TCP connections it had accepted, which a
real client sees as a connection error and retries — the retry lands
on a live worker (kernel ``SO_REUSEPORT`` distribution only offers
live sockets).  "Zero dropped requests" under worker SIGKILL means
exactly that: every request eventually gets a correct answer.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from serveutil import http_request, post_query

SRC = str(Path(__file__).resolve().parents[2] / "src")


class PreforkFleet:
    """``serve --workers N`` as a context manager.

    ``__enter__`` boots the CLI and blocks on the banner; ``__exit__``
    SIGTERMs the supervisor (unless :meth:`stop` already ran) and
    fails loudly if the process survives."""

    def __init__(self, path, workers: int, *, extra_args=(),
                 env_extra=None):
        self.args = [sys.executable, "-m", "repro.cli", "serve",
                     str(path), "--port", "0",
                     "--workers", str(workers), *extra_args]
        self.workers = workers
        self.env = dict(os.environ)
        self.env["PYTHONPATH"] = (SRC + os.pathsep
                                  + self.env.get("PYTHONPATH", ""))
        if env_extra:
            self.env.update(env_extra)
        self.process: subprocess.Popen | None = None
        self.port: int | None = None
        self.banner = ""
        self._finished: tuple[int, str, str] | None = None

    # ------------------------------------------------------------------
    def __enter__(self) -> "PreforkFleet":
        self.process = subprocess.Popen(
            self.args, env=self.env, stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, text=True)
        self.banner = self.process.stdout.readline()
        if "http://127.0.0.1:" not in self.banner:
            _out, err = self.process.communicate(timeout=30)
            raise AssertionError(f"fleet failed to boot: "
                                 f"banner={self.banner!r} stderr={err!r}")
        self.port = int(self.banner.split("http://127.0.0.1:")[1]
                        .split()[0])
        self._wait_ready()
        return self

    def _wait_ready(self, deadline_seconds: float = 30.0) -> None:
        # The banner prints before the workers fork and listen; poll
        # until one answers (or the supervisor died a fatal death, in
        # which case readiness will never come — let stop() report it).
        deadline = time.monotonic() + deadline_seconds
        while time.monotonic() < deadline:
            if self.process.poll() is not None:
                return
            try:
                self.healthz(timeout=2.0)
                return
            except (ConnectionError, OSError, AssertionError):
                time.sleep(0.02)

    def __exit__(self, *exc_info) -> None:
        if self._finished is None and self.process is not None:
            if self.process.poll() is None:
                self.process.send_signal(signal.SIGTERM)
            try:
                self.process.communicate(timeout=60)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.communicate(timeout=10)
                raise AssertionError("fleet did not drain on SIGTERM")

    def stop(self, sig=signal.SIGTERM,
             timeout: float = 60.0) -> tuple[int, str, str]:
        """Signal the supervisor and wait; returns
        ``(returncode, stdout, stderr)``."""
        if self._finished is None:
            if self.process.poll() is None:
                self.process.send_signal(sig)
            stdout, stderr = self.process.communicate(timeout=timeout)
            self._finished = (self.process.returncode, stdout, stderr)
        return self._finished

    # ------------------------------------------------------------------
    def healthz(self, timeout: float = 10.0) -> dict:
        status, data = http_request(self.port, "GET", "/healthz",
                                    timeout=timeout)
        assert status == 200, (status, data)
        return json.loads(data)

    def stats(self, timeout: float = 10.0) -> dict:
        status, data = http_request(self.port, "GET", "/stats",
                                    timeout=timeout)
        assert status == 200, (status, data)
        return json.loads(data)

    def sample_workers(self, attempts: int = 60,
                       want: int | None = None) -> dict[int, int]:
        """``{worker_id: pid}`` of workers observed answering
        ``/healthz`` over fresh connections; stops early once ``want``
        (default: the fleet size) distinct workers have answered."""
        want = self.workers if want is None else want
        seen: dict[int, int] = {}
        for _ in range(attempts):
            payload = self.healthz()
            if "worker_id" in payload:
                seen[payload["worker_id"]] = payload["pid"]
            if len(seen) >= want:
                break
            time.sleep(0.01)
        return seen

    def wait_for_pid_change(self, old_pids: set[int],
                            deadline_seconds: float = 20.0) -> int:
        """Block until ``/healthz`` answers from a pid outside
        ``old_pids`` (a restarted worker); returns that pid."""
        deadline = time.monotonic() + deadline_seconds
        while time.monotonic() < deadline:
            try:
                payload = self.healthz(timeout=5.0)
            except (ConnectionError, OSError):
                time.sleep(0.05)
                continue
            pid = payload.get("pid")
            if pid is not None and pid not in old_pids:
                return pid
            time.sleep(0.05)
        raise AssertionError(f"no restarted worker answered within "
                             f"{deadline_seconds}s (old pids: {old_pids})")


def post_query_retry(port: int, payload: dict, *, retries: int = 50,
                     timeout: float = 30.0) -> tuple[dict, int]:
    """POST /query, retrying on connection resets (a killed worker's
    accepted connections die mid-exchange) and on 503 (a worker
    draining); returns ``(parsed_response, n_retries)``.  Any other
    non-200 is a hard failure — faults must never produce wrong or
    half-baked answers, only retriable unavailability."""
    attempts = 0
    while True:
        try:
            status, parsed = post_query(port, payload, timeout=timeout)
        except (ConnectionError, OSError):
            status, parsed = None, None
        if status == 200:
            return parsed, attempts
        assert status in (None, 503), (status, parsed)
        attempts += 1
        if attempts > retries:
            raise AssertionError(
                f"query still failing after {retries} retries "
                f"(last status {status})")
        time.sleep(0.05)
