"""Smoke test for the serving benchmark harness.

Runs ``benchmarks/bench_serve.py`` at a miniature configuration — the
harness itself asserts every served ranking equals the offline
``query_many`` result, so passing here means the equivalence held with
a real server, real sockets and concurrent clients.  QPS *ordering* is
deliberately not asserted at smoke scale (single-core CI noise); the
tracked ``results/BENCH_serve.json`` carries the full-scale numbers.
"""

import importlib.util
import json
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"


def load_module(name: str):
    spec = importlib.util.spec_from_file_location(name,
                                                  BENCH_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_bench_serve_smoke(tmp_path):
    bench = load_module("bench_serve")
    report = bench.run(n_vectors=200, dim=16, n_queries=24, k=5,
                       n_clients=2, shard_counts=(2,), windows_ms=(1.0,),
                       workdir=tmp_path)
    assert report["benchmark"] == "serve"
    assert report["config"]["n_clients"] == 2
    modes = [(r["op"], r["mode"], r["layout"]) for r in report["results"]]
    assert modes == [("open", "eager", "shards=2"),
                     ("open", "mmap", "shards=2"),
                     ("serve", "per-request", "shards=2"),
                     ("serve", "micro-batch(w=1ms)", "shards=2")]
    for record in report["results"]:
        assert record["seconds"] >= 0
        if record["op"] == "serve":
            assert record["qps"] > 0
            assert record["n"] == 24
    per_request = next(r for r in report["results"]
                       if r["mode"] == "per-request")
    micro = next(r for r in report["results"]
                 if r["mode"].startswith("micro-batch"))
    # Dispatch shapes, not speed: per-request ticks are singletons,
    # micro-batch ticks may coalesce.
    assert per_request["mean_batch"] == 1.0
    assert micro["mean_batch"] >= 1.0
    # JSON-serializable, as the BENCH_*.json tracking requires.
    (tmp_path / "BENCH_serve.json").write_text(json.dumps(report))
    text = bench.render(report).to_text()
    assert "per-request" in text and "micro-batch" in text


def test_bench_prefork_smoke(tmp_path):
    """The ``--prefork`` fleet workload at miniature scale: fleets of
    1 and 2 boot through the real CLI, pass the served ≡ offline gate
    (asserted inside ``_hammer`` before timing), report QPS, and exit
    0 on SIGTERM.  QPS ordering across fleet sizes is deliberately not
    asserted — on a 1-CPU runner flat is the honest answer."""
    bench = load_module("bench_serve")
    report = bench.run_prefork(n_vectors=200, dim=16, n_queries=24, k=5,
                               n_clients=2, worker_counts=(1, 2),
                               n_shards=2, workdir=tmp_path)
    assert report["benchmark"] == "serve-prefork"
    assert "bit-identical" in report["note"]
    assert [r["workers"] for r in report["results"]] == [1, 2]
    for record in report["results"]:
        assert record["seconds"] > 0
        assert record["qps"] > 0
        assert record["n"] == 24
        # /proc-backed memory accounting on Linux runners.
        if record["rss_mb"] is not None:
            assert record["rss_mb"] > 0
    (tmp_path / "BENCH_prefork.json").write_text(json.dumps(report))
    text = bench.render_prefork(report).to_text()
    assert "prefork(workers=2)" in text


def test_bench_cache_zipfian_smoke(tmp_path):
    """The ``--zipfian`` cache workload at miniature scale.  The
    harness asserts served == offline rankings before any timing, so
    passing means cached equivalence held over real sockets; hit-rate
    *shape* (zipfian tiny pool → mostly exact hits; near-dupe → mostly
    semantic hits) is asserted, QPS ordering is not (CI noise)."""
    bench = load_module("bench_serve")
    report = bench.run_cache(n_vectors=200, dim=16, pool_size=6,
                             n_requests=60, k=5, n_clients=2,
                             shard_counts=(2,), workdir=tmp_path)
    assert report["benchmark"] == "serve-cache"
    by_key = {(r["workload"], r["mode"]): r for r in report["results"]}
    assert len(by_key) == 6  # 3 workloads x {no-cache, cached}
    for record in report["results"]:
        assert record["seconds"] >= 0
        assert record["qps"] > 0
        assert record["n"] == 60
        if record["mode"] == "no-cache":
            assert "exact_hit_rate" not in record
    zipfian = by_key[("zipfian(s=1.1)", "cached")]
    # 60 requests over 6 distinct queries: at most 6 exact misses.
    assert zipfian["exact_hit_rate"] >= 0.5
    near_dupe = by_key[("near-dupe", "cached")]
    # Every near-dupe vector is fresh: the exact tier cannot carry the
    # load, the semantic tier must.
    assert near_dupe["semantic_hit_rate"] > near_dupe["exact_hit_rate"]
    (tmp_path / "BENCH_cache.json").write_text(json.dumps(report))
    text = bench.render_cache(report).to_text()
    assert "zipfian" in text and "near-dupe" in text
