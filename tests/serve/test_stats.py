"""Unit layer for the serving metrics: nearest-rank percentiles and
the sliding-window QPS denominator.

Both carried real bugs: ``percentile`` truncated instead of taking the
nearest-rank ceiling (p50 of ``[1, 2]`` read as 2, skewing every small
reservoir's ``/stats`` latency figure high), and ``qps`` divided by
the full 60 s window even when every completion landed in the last few
seconds, under-reporting bursts on a freshly-busy server.  The exact
values here are the regression pins.
"""

import pytest

from repro.serve.stats import ServerStats, percentile


class TestPercentile:
    def test_empty_is_none(self):
        assert percentile([], 0.5) is None

    # n = 1: every q lands on the only value.
    @pytest.mark.parametrize("q", [0.0, 0.5, 0.99, 1.0])
    def test_single_value(self, q):
        assert percentile([7.0], q) == 7.0

    # n = 2: nearest-rank ceil — p50 is the FIRST value (ceil(1)-1),
    # not the second (the truncation bug's answer).
    def test_two_values_p50_is_lower(self):
        assert percentile([1.0, 2.0], 0.5) == 1.0
        assert percentile([2.0, 1.0], 0.5) == 1.0   # order-independent

    def test_two_values_tails(self):
        assert percentile([1.0, 2.0], 0.0) == 1.0
        assert percentile([1.0, 2.0], 0.99) == 2.0
        assert percentile([1.0, 2.0], 1.0) == 2.0

    # n = 4: ceil(q*4) picks ranks 1..4 (1-indexed).
    @pytest.mark.parametrize("q,want", [
        (0.25, 1.0),    # ceil(1.0) = rank 1
        (0.50, 2.0),    # ceil(2.0) = rank 2
        (0.51, 3.0),    # ceil(2.04) = rank 3
        (0.75, 3.0),    # ceil(3.0) = rank 3
        (0.99, 4.0),    # ceil(3.96) = rank 4
    ])
    def test_four_values(self, q, want):
        assert percentile([4.0, 2.0, 1.0, 3.0], q) == want

    # n = 100: the textbook case — p50 of 1..100 is 50, p99 is 99.
    @pytest.mark.parametrize("q,want", [
        (0.50, 50.0), (0.90, 90.0), (0.99, 99.0), (1.0, 100.0),
    ])
    def test_hundred_values(self, q, want):
        values = [float(i) for i in range(100, 0, -1)]
        assert percentile(values, q) == want


class TestQps:
    def _stats(self, clock):
        return ServerStats(window_seconds=60.0, clock=lambda: clock[0])

    def test_idle_is_zero(self):
        clock = [1000.0]
        assert self._stats(clock).qps() == 0.0

    def test_burst_on_old_server_uses_occupied_span(self):
        """A server up for minutes that just served 100 queries in 2 s
        must report ~50 QPS, not 100/60."""
        clock = [0.0]
        stats = self._stats(clock)
        clock[0] = 300.0                    # long idle uptime
        for i in range(100):
            stats.record_response(200, 0.001, n_queries=1)
            clock[0] += 2.0 / 99            # 100 completions over 2 s
        assert stats.qps() == pytest.approx(100 / 2.0, rel=0.02)

    def test_single_completion_is_floored_at_one_second(self):
        """One completion a millisecond ago is 1 QPS (floored), not
        1000."""
        clock = [50.0]
        stats = self._stats(clock)
        stats.record_response(200, 0.001, n_queries=1)
        clock[0] += 0.001
        assert stats.qps() == pytest.approx(1.0)

    def test_steady_state_matches_rate(self):
        clock = [0.0]
        stats = self._stats(clock)
        for _ in range(30):                 # 100 queries/s for 3 s
            for _ in range(10):
                stats.record_response(200, 0.001, n_queries=1)
            clock[0] += 0.1
        assert stats.qps() == pytest.approx(100.0, rel=0.05)

    def test_window_prunes_old_completions(self):
        clock = [0.0]
        stats = self._stats(clock)
        stats.record_response(200, 0.001, n_queries=5)
        clock[0] = 61.0                     # past the 60 s window
        assert stats.qps() == 0.0

    def test_batch_queries_count_fully(self):
        clock = [0.0]
        stats = self._stats(clock)
        stats.record_response(200, 0.001, n_queries=8)
        clock[0] = 4.0
        stats.record_response(200, 0.001, n_queries=8)
        assert stats.qps() == pytest.approx(16 / 4.0)

    def test_snapshot_uses_injected_clock(self):
        clock = [10.0]
        stats = self._stats(clock)
        clock[0] = 25.0
        snap = stats.snapshot()
        assert snap["uptime_seconds"] == pytest.approx(15.0)
        assert snap["qps"] == 0.0
