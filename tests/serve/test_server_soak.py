"""Soak/concurrency tests: no cross-request bleed under fire.

The failure mode these hunt is specific to micro-batching: the
dispatcher stacks concurrent requests into one matrix and must hand
each request back *its own* rows.  With a corpus full of duplicate
vectors (dense score ties) and clients hammering from many threads,
an off-by-one in the demux, a race on the pending list, or a
shape-dependent kernel would all show up as one request receiving a
neighbour's ranking.  Every response is therefore checked against the
offline expectation *for that exact query* — precomputed once, so the
comparison itself cannot race.

Batch compositions (which query, which k, single vs batch shape, how
many worker threads fire them) are hypothesis-driven against one
long-lived server; a deterministic sweep then covers shards {1, 2, 5}
× client threads {1, 4, 8} for the acceptance grid.
"""

import itertools
import json
import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from serveutil import (
    http_request,
    make_corpus,
    offline_ranking,
    post_query,
    save_layout,
    served_ranking,
)

from repro.index import open_index
from repro.serve import ServerThread

DIM = 16
N_QUERIES = 12
KS = (1, 4, 9)


def _expected(index, queries):
    """Offline truth per (query position, k)."""
    return {(q, k): offline_ranking(hits)
            for k in KS
            for q, hits in enumerate(index.query_many(queries, k=k))}


@pytest.fixture(scope="module")
def corpus():
    return make_corpus(n=180, dim=DIM, seed=23)


@pytest.fixture(scope="module")
def queries(corpus):
    _keys, vectors = corpus
    # All queries are corpus rows: every ranking is tie-dense, the
    # worst case for demux mix-ups staying invisible.
    return np.array(vectors[:: len(vectors) // N_QUERIES][:N_QUERIES])


@pytest.fixture(scope="module")
def soak_server(tmp_path_factory, corpus, queries):
    """One server (2 shards, mmap) plus its offline expectations,
    shared by every hypothesis example."""
    keys, vectors = corpus
    path = save_layout(tmp_path_factory.mktemp("soak"), keys, vectors, 2)
    expected = _expected(open_index(path), queries)
    with ServerThread(open_index(path, mmap=True), max_wait_ms=5.0,
                      max_batch=16) as handle:
        yield handle, expected


#: One request spec: (query position, k).  Hypothesis composes lists of
#: them, a worker count, and a shape flag (single requests vs batches).
request_specs = st.lists(
    st.tuples(st.integers(0, N_QUERIES - 1), st.sampled_from(KS)),
    min_size=1, max_size=16)


class TestHypothesisCompositions:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(specs=request_specs, n_workers=st.integers(1, 8),
           as_batch=st.booleans())
    def test_every_response_matches_its_own_query(self, soak_server, queries,
                                                  specs, n_workers, as_batch):
        handle, expected = soak_server
        if as_batch:
            # One multi-vector request per k group: the in-request batch
            # must coalesce with whatever else is in flight and still
            # demux cleanly.
            groups: dict[int, list[int]] = {}
            for q, k in specs:
                groups.setdefault(k, []).append(q)
            jobs = list(groups.items())

            def run_one(item):
                k, members = item
                status, payload = post_query(
                    handle.port,
                    {"vectors": [queries[q].tolist() for q in members],
                     "k": k})
                assert status == 200
                return [(q, k, served_ranking(result["hits"]))
                        for q, result in zip(members, payload["results"])]
        else:
            jobs = specs

            def run_one(item):
                q, k = item
                status, payload = post_query(
                    handle.port, {"vector": queries[q].tolist(), "k": k})
                assert status == 200
                return [(q, k, served_ranking(payload["hits"]))]

        with ThreadPoolExecutor(max_workers=n_workers) as pool:
            outcomes = [entry for result in pool.map(run_one, jobs)
                        for entry in result]
        assert len(outcomes) == len(specs)
        for q, k, got in outcomes:
            assert got == expected[(q, k)], (
                f"cross-request bleed: query {q} (k={k}) got another "
                f"request's ranking")


class TestTwoIndexSoak:
    @pytest.fixture(scope="class")
    def routed_server(self, tmp_path_factory, corpus, queries):
        """One catalog server over two entries built from *different*
        slices of the tie-dense corpus (disjoint key prefixes), plus
        per-entry offline expectations.  max_open=1 keeps open/evict
        churn running underneath the whole soak."""
        from repro.catalog import Catalog, CatalogEntry
        from repro.index import VectorIndex, save_index

        keys, vectors = corpus
        root = tmp_path_factory.mktemp("routed")
        catalog = Catalog(root=root)
        half = len(keys) // 2
        slices = {"alpha": ("a", slice(None, half)),
                  "beta": ("b", slice(half, None))}
        expected = {}
        for name, (prefix, rows) in slices.items():
            index = VectorIndex(dim=DIM, seed=5)
            part = vectors[rows]
            index.add_batch([f"{prefix}{i:05d}" for i in range(len(part))],
                            part)
            save_index(index, root / f"{name}.npz")
            catalog.add(CatalogEntry(name=name, path=f"{name}.npz",
                                     kind="vector"))
            expected[name] = _expected(index, queries)
        catalog.save()
        with ServerThread(catalog, max_wait_ms=2.0, max_batch=8,
                          max_open=1) as handle:
            yield handle, expected, {name: prefix for name, (prefix, _rows)
                                     in slices.items()}

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(specs=request_specs, n_workers=st.integers(2, 8),
           names=st.lists(st.sampled_from(["alpha", "beta"]),
                          min_size=1, max_size=16))
    def test_routed_traffic_never_bleeds_across_indexes(
            self, routed_server, queries, specs, n_workers, names):
        """Concurrent clients hammer both entries of a max_open=1
        catalog: every response must carry its own entry's keys (the
        prefixes are disjoint, so one foreign key is proof of bleed)
        and exactly its own entry's offline ranking."""
        handle, expected, prefixes = routed_server
        jobs = [(name, q, k) for (q, k), name
                in zip(specs, itertools.cycle(names))]

        def run_one(job):
            name, q, k = job
            status, payload = post_query(
                handle.port, {"vector": queries[q].tolist(), "k": k,
                              "index": name})
            assert status == 200
            return name, q, k, served_ranking(payload["hits"])

        with ThreadPoolExecutor(max_workers=n_workers) as pool:
            outcomes = list(pool.map(run_one, jobs))
        for name, q, k, got in outcomes:
            assert all(key.startswith(prefixes[name]) for key, _ in got), (
                f"cross-index bleed: {name!r} returned foreign keys")
            assert got == expected[name][(q, k)], (
                f"routed query {q} (k={k}) on {name!r} diverged from "
                f"that entry's offline ranking")


class TestThreadSweep:
    @pytest.mark.parametrize("n_shards", [1, 2, 5])
    @pytest.mark.parametrize("n_clients", [1, 4, 8])
    def test_concurrent_clients_get_their_own_results(
            self, tmp_path, corpus, queries, n_shards, n_clients):
        keys, vectors = corpus
        path = save_layout(tmp_path, keys, vectors, n_shards)
        expected = _expected(open_index(path), queries)
        per_client = 12
        spec_cycle = itertools.cycle(
            [(q, k) for q in range(N_QUERIES) for k in KS])
        workloads = [[next(spec_cycle) for _ in range(per_client)]
                     for _ in range(n_clients)]
        failures: list[str] = []

        def client(workload):
            # One persistent keep-alive connection per client thread,
            # like a real serving client.
            import http.client
            conn = http.client.HTTPConnection("127.0.0.1", handle.port,
                                              timeout=30)
            try:
                for q, k in workload:
                    body = json.dumps({"vector": queries[q].tolist(),
                                       "k": k}).encode()
                    conn.request("POST", "/query", body=body,
                                 headers={"Content-Type":
                                          "application/json"})
                    response = conn.getresponse()
                    payload = json.loads(response.read())
                    if response.status != 200:
                        failures.append(f"status {response.status}")
                    elif served_ranking(payload["hits"]) != expected[(q, k)]:
                        failures.append(f"bleed at query {q} k={k}")
            finally:
                conn.close()

        with ServerThread(open_index(path, mmap=True), max_wait_ms=2.0,
                          max_batch=8) as handle:
            threads = [threading.Thread(target=client, args=(workload,))
                       for workload in workloads]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            status, data = http_request(handle.port, "GET", "/stats")
        assert not failures, failures[:5]
        assert status == 200
        snapshot = json.loads(data)
        assert snapshot["queries_total"] == n_clients * per_client
        assert snapshot["responses_by_status"]["200"] == \
            n_clients * per_client
        assert snapshot["batch"]["dispatched"] >= 1
