"""Served quantized rankings ≡ offline unquantized rankings.

The quantized tier composes with the whole serving stack — dispatcher
micro-batching, result cache, catalog routing — *because* its rankings
are bit-identical to the fp path.  These tests pin that end to end: a
server over a quantized layout (``open_index(..., quantized=True)``,
the ``serve --quantized`` path) answers every query with exactly the
hits an offline unquantized index produces, and /healthz + /stats
report the quantization state.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.index import open_index
from repro.serve import ServerThread

from serveutil import http_request, make_corpus, save_layout


def offline_rankings(path, queries, k):
    index = open_index(path)
    return [[(hit.key, round(hit.score, 9)) for hit in hits]
            for hits in index.query_many(queries, k=k)]


def post_query(port, vector, k, **extra):
    payload = {"vector": list(map(float, vector)), "k": k, **extra}
    status, body = http_request(port, "POST", "/query",
                                json.dumps(payload).encode())
    assert status == 200, body
    return [(hit["key"], round(hit["score"], 9))
            for hit in json.loads(body)["hits"]]


@pytest.mark.parametrize("n_shards", [1, 3])
def test_served_quantized_equals_offline_unquantized(tmp_path, n_shards):
    keys, vectors = make_corpus(n=120, dim=16, seed=5)
    path = save_layout(tmp_path, keys, vectors, n_shards, seed=0)
    quantized = open_index(path)
    quantized.quantize()
    quantized.save(path)

    rng = np.random.default_rng(6)
    queries = np.vstack([vectors[:4], rng.standard_normal((4, 16))])
    want = offline_rankings(path, queries, k=6)

    target = open_index(path, mmap=True, quantized=True)
    assert target.use_quantized
    with ServerThread(target, max_wait_ms=1.0) as handle:
        got = [post_query(handle.port, query, 6) for query in queries]
        # Cache hit path must serve the same (identical) ranking.
        again = post_query(handle.port, queries[0], 6)
    assert got == want
    assert again == want[0]


def test_healthz_and_stats_report_quantization(tmp_path):
    keys, vectors = make_corpus(n=60, dim=16, seed=7)
    path = save_layout(tmp_path, keys, vectors, 1, seed=0)
    quantized = open_index(path)
    quantized.quantize()
    quantized.save(path)

    with ServerThread(open_index(path, mmap=True, quantized=True),
                      max_wait_ms=1.0) as handle:
        status, body = http_request(handle.port, "GET", "/healthz")
        assert status == 200
        health = json.loads(body)
        assert health["quantized"] is True
        assert health["quantized_scoring"] is True
        post_query(handle.port, vectors[0], 3)
        status, body = http_request(handle.port, "GET", "/stats")
        assert status == 200
        sections = json.loads(body)["indexes"]
        assert all(section["quantized"] and section["quantized_scoring"]
                   for section in sections.values())


def test_unquantized_server_reports_false(tmp_path):
    keys, vectors = make_corpus(n=30, dim=16, seed=8)
    path = save_layout(tmp_path, keys, vectors, 1, seed=0)
    with ServerThread(open_index(path, mmap=True),
                      max_wait_ms=1.0) as handle:
        status, body = http_request(handle.port, "GET", "/healthz")
        assert status == 200
        health = json.loads(body)
        assert health["quantized"] is False
        assert health["quantized_scoring"] is False


def test_sidecar_without_opt_in_serves_fp_path(tmp_path):
    """A quantized layout served *without* --quantized must behave as
    before: sidecar attached (healthz says so) but scoring untouched."""
    keys, vectors = make_corpus(n=60, dim=16, seed=9)
    path = save_layout(tmp_path, keys, vectors, 1, seed=0)
    quantized = open_index(path)
    quantized.quantize()
    quantized.save(path)
    want = offline_rankings(path, vectors[:3], k=5)
    with ServerThread(open_index(path, mmap=True),
                      max_wait_ms=1.0) as handle:
        health = json.loads(http_request(handle.port, "GET", "/healthz")[1])
        assert health["quantized"] is True
        assert health["quantized_scoring"] is False
        got = [post_query(handle.port, query, 5) for query in vectors[:3]]
    assert got == want


def test_server_thread_rejects_missing_sidecar(tmp_path):
    keys, vectors = make_corpus(n=30, dim=16, seed=10)
    path = save_layout(tmp_path, keys, vectors, 1, seed=0)
    with pytest.raises(ValueError, match="quantize"):
        ServerThread(open_index(path), quantized=True)
