"""Unit tests for the HTTP framing and /query payload validation."""

import asyncio
import json

import numpy as np
import pytest

from repro.serve.protocol import (
    ProtocolError,
    parse_query_payload,
    read_request,
    render_response,
)


def parse(raw: bytes, max_body: int = 1 << 20):
    """Run read_request over an in-memory stream."""
    async def _go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, max_body=max_body)
    return asyncio.run(_go())


def _post(body: bytes, extra: str = "") -> bytes:
    return (f"POST /query HTTP/1.1\r\nHost: x\r\n{extra}"
            f"Content-Length: {len(body)}\r\n\r\n").encode() + body


class TestReadRequest:
    def test_parses_post_with_body(self):
        request = parse(_post(b'{"vector": [1.0]}'))
        assert request.method == "POST"
        assert request.target == "/query"
        assert request.body == b'{"vector": [1.0]}'
        assert request.keep_alive

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_connection_close_header(self):
        request = parse(_post(b"{}", extra="Connection: close\r\n"))
        assert not request.keep_alive

    def test_http10_defaults_to_close(self):
        request = parse(b"GET /healthz HTTP/1.0\r\n\r\n")
        assert not request.keep_alive

    def test_malformed_request_line_is_400(self):
        with pytest.raises(ProtocolError) as err:
            parse(b"NONSENSE\r\n\r\n")
        assert err.value.status == 400

    def test_non_http_version_is_400(self):
        with pytest.raises(ProtocolError) as err:
            parse(b"GET / SPDY/9\r\n\r\n")
        assert err.value.status == 400

    def test_oversized_body_is_413_and_closes(self):
        with pytest.raises(ProtocolError) as err:
            parse(_post(b"x" * 100), max_body=10)
        assert err.value.status == 413
        assert err.value.close

    def test_invalid_content_length_is_400(self):
        raw = b"POST /query HTTP/1.1\r\nContent-Length: nope\r\n\r\n"
        with pytest.raises(ProtocolError) as err:
            parse(raw)
        assert err.value.status == 400

    def test_post_without_length_is_411(self):
        with pytest.raises(ProtocolError) as err:
            parse(b"POST /query HTTP/1.1\r\nHost: x\r\n\r\n")
        assert err.value.status == 411

    def test_transfer_encoding_is_501(self):
        raw = (b"POST /query HTTP/1.1\r\n"
               b"Transfer-Encoding: chunked\r\n\r\n")
        with pytest.raises(ProtocolError) as err:
            parse(raw)
        assert err.value.status == 501

    def test_truncated_body_raises_incomplete_read(self):
        raw = (b"POST /query HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort")
        with pytest.raises(asyncio.IncompleteReadError):
            parse(raw)


class TestRenderResponse:
    def test_frames_status_headers_body(self):
        raw = render_response(200, b'{"ok": true}')
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Length: 12" in head
        assert b"Connection: keep-alive" in head
        assert body == b'{"ok": true}'

    def test_close_connection(self):
        raw = render_response(400, b"{}", keep_alive=False)
        assert b"Connection: close" in raw


class TestParseQueryPayload:
    DIM = 4

    def _ok(self, payload):
        return parse_query_payload(json.dumps(payload).encode(), self.DIM)

    def _err(self, payload) -> ProtocolError:
        body = (payload if isinstance(payload, bytes)
                else json.dumps(payload).encode())
        with pytest.raises(ProtocolError) as err:
            parse_query_payload(body, self.DIM)
        return err.value

    def test_single_shape(self):
        matrix, k, excludes, single = self._ok(
            {"vector": [1, 2, 3, 4], "k": 3, "exclude": "key"})
        assert single and k == 3 and excludes == ["key"]
        assert matrix.shape == (1, self.DIM)

    def test_batch_shape(self):
        matrix, k, excludes, single = self._ok(
            {"vectors": [[1, 2, 3, 4], [5, 6, 7, 8]],
             "excludes": ["a", None]})
        assert not single and k == 10 and excludes == ["a", None]
        assert matrix.shape == (2, self.DIM)
        assert matrix.dtype == np.float64

    def test_invalid_json_is_400(self):
        assert self._err(b"{nope").status == 400

    def test_non_object_is_400(self):
        assert self._err([1, 2]).status == 400

    def test_missing_vector_is_400(self):
        assert "missing" in self._err({"k": 5}).message

    def test_both_shapes_is_400(self):
        error = self._err({"vector": [1, 2, 3, 4],
                           "vectors": [[1, 2, 3, 4]]})
        assert "mutually exclusive" in error.message

    def test_wrong_dim_is_400(self):
        assert "dims" in self._err({"vector": [1, 2]}).message

    def test_ragged_batch_is_400(self):
        assert self._err({"vectors": [[1, 2, 3, 4], [1, 2]]}).status == 400

    def test_non_numeric_entries_are_400(self):
        assert self._err({"vector": [1, "x", 3, 4]}).status == 400
        assert self._err({"vector": [True, 1, 2, 3]}).status == 400

    def test_non_finite_is_400(self):
        assert "finite" in self._err({"vector": [1, 2, 3, float("nan")]
                                      }).message

    def test_bad_k_is_400(self):
        for k in (0, -1, 1.5, "3", True):
            assert self._err({"vector": [1, 2, 3, 4], "k": k}).status == 400

    def test_misaligned_excludes_are_400(self):
        error = self._err({"vectors": [[1, 2, 3, 4]], "excludes": ["a", "b"]})
        assert "align" in error.message

    def test_non_string_exclude_is_400(self):
        assert self._err({"vector": [1, 2, 3, 4],
                          "exclude": 7}).status == 400

    def test_empty_batch_is_400(self):
        assert self._err({"vectors": []}).status == 400
